#include "rdf/compressed_store.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/generator.h"
#include "obs/metrics.h"
#include "rdf/block_format.h"
#include "rdf/dataset.h"
#include "rdf/triple_store.h"

namespace alex::rdf {
namespace {

Triple T(TermId s, TermId p, TermId o) { return Triple{s, p, o}; }

std::vector<Triple> CuratedTriples() {
  return {
      T(0, 10, 20), T(0, 10, 21), T(0, 11, 22), T(1, 10, 20), T(2, 11, 21),
      T(2, 11, 23), T(3, 10, 20), T(3, 12, 24), T(4, 10, 25), T(5, 12, 20),
  };
}

/// Every pattern shape over the curated fixture, including misses.
std::vector<TriplePattern> CuratedPatterns() {
  const TermId kAny = kInvalidTermId;
  return {
      {kAny, kAny, kAny},  // Full scan.
      {0, kAny, kAny},     {2, kAny, kAny},   {9, kAny, kAny},  // s??
      {kAny, 10, kAny},    {kAny, 12, kAny},  {kAny, 99, kAny},  // ?p?
      {kAny, kAny, 20},    {kAny, kAny, 24},  {kAny, kAny, 99},  // ??o
      {0, 10, kAny},       {3, 12, kAny},     {0, 12, kAny},     // sp?
      {kAny, 10, 20},      {kAny, 11, 23},    {kAny, 10, 24},    // ?po
      {0, kAny, 21},       {5, kAny, 20},     {1, kAny, 21},     // s?o
      {0, 10, 20},         {2, 11, 23},       {2, 11, 20},       // spo
  };
}

void ExpectEquivalent(const TripleSource& reference, const TripleSource& probe,
                      const std::vector<TriplePattern>& patterns) {
  ASSERT_EQ(reference.size(), probe.size());
  EXPECT_EQ(reference.DistinctPredicates(), probe.DistinctPredicates());
  EXPECT_EQ(reference.DistinctSubjects(), probe.DistinctSubjects());
  for (size_t i = 0; i < patterns.size(); ++i) {
    const TriplePattern& p = patterns[i];
    EXPECT_EQ(reference.Match(p), probe.Match(p))
        << "pattern " << i << " (" << p.subject << "," << p.predicate << ","
        << p.object << ")";
    EXPECT_EQ(reference.CountMatches(p), probe.CountMatches(p)) << "pattern " << i;
  }
}

TripleStore ReferenceStore(const std::vector<Triple>& triples) {
  TripleStore store;
  for (const Triple& t : triples) store.Add(t);
  return store;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(CompressedStoreTest, CuratedEquivalenceAcrossBlockBoundaries) {
  const auto triples = CuratedTriples();
  const TripleStore reference = ReferenceStore(triples);
  // block_size 4 forces several blocks per ordering; 1 is the degenerate
  // one-triple-per-block case.
  for (size_t block_size : {1u, 2u, 4u, 1024u}) {
    CompressedStoreOptions opts;
    opts.block_size = block_size;
    const auto store = CompressedTripleStore::FromTriples(triples, opts);
    SCOPED_TRACE("block_size=" + std::to_string(block_size));
    ExpectEquivalent(reference, store, CuratedPatterns());
  }
}

TEST(CompressedStoreTest, NumBlocksMatchesBlockSize) {
  CompressedStoreOptions opts;
  opts.block_size = 4;
  const auto store = CompressedTripleStore::FromTriples(CuratedTriples(), opts);
  EXPECT_EQ(store.size(), 10u);
  EXPECT_EQ(store.NumBlocks(TripleOrder::kSpo), 3u);  // ceil(10 / 4).
  EXPECT_EQ(store.NumBlocks(TripleOrder::kPos), 3u);
  EXPECT_EQ(store.NumBlocks(TripleOrder::kOsp), 3u);
  EXPECT_FALSE(store.disk_backed());
  EXPECT_GT(store.BytesPerTriple(), 0.0);
}

TEST(CompressedStoreTest, BuildFromTripleStoreAndDeduplication) {
  TripleStore reference = ReferenceStore(CuratedTriples());
  reference.Add(T(0, 10, 20));  // Duplicate; both stores must drop it.
  const auto store = CompressedTripleStore::Build(reference);
  ExpectEquivalent(reference, store, CuratedPatterns());
}

TEST(CompressedStoreTest, FuzzedEquivalenceInMemory) {
  datagen::TripleWorkloadConfig config;
  config.seed = 20260808;
  config.num_triples = 20000;
  const auto triples = datagen::GenerateTripleWorkload(config);
  const auto patterns = datagen::GeneratePatternWorkload(triples, 400, 99);
  const TripleStore reference = ReferenceStore(triples);
  CompressedStoreOptions opts;
  opts.block_size = 64;
  const auto store = CompressedTripleStore::FromTriples(triples, opts);
  ExpectEquivalent(reference, store, patterns);
}

TEST(CompressedStoreTest, EmptyStore) {
  const auto store = CompressedTripleStore::FromTriples({});
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.empty());
  EXPECT_TRUE(store.Match(TriplePattern{}).empty());
  EXPECT_TRUE(store.DistinctPredicates().empty());
  EXPECT_TRUE(store.DistinctSubjects().empty());

  const std::string path = TempPath("empty.blocks");
  ASSERT_TRUE(store.WriteFile(path).ok());
  auto opened = CompressedTripleStore::OpenFile(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened->size(), 0u);
  EXPECT_TRUE(opened->Match(TriplePattern{}).empty());
  std::remove(path.c_str());
}

TEST(CompressedStoreTest, MaxTermIdRoundTrip) {
  // kInvalidTermId is the wildcard, so UINT32_MAX - 1 is the largest legal
  // component; the varint delta path must survive the full id range.
  const TermId big = kInvalidTermId - 1;
  const std::vector<Triple> triples = {
      T(0, 0, 0), T(0, 0, big), T(big, big, big), T(big, 0, 5), T(7, big, 0),
  };
  const TripleStore reference = ReferenceStore(triples);
  CompressedStoreOptions opts;
  opts.block_size = 2;
  const auto store = CompressedTripleStore::FromTriples(triples, opts);
  const TermId kAny = kInvalidTermId;
  const std::vector<TriplePattern> patterns = {
      {kAny, kAny, kAny}, {big, kAny, kAny}, {kAny, big, kAny},
      {kAny, kAny, big},  {big, big, big},   {big, kAny, 5},
  };
  ExpectEquivalent(reference, store, patterns);

  const std::string path = TempPath("max_termid.blocks");
  ASSERT_TRUE(store.WriteFile(path).ok());
  auto opened = CompressedTripleStore::OpenFile(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ExpectEquivalent(reference, *opened, patterns);
  std::remove(path.c_str());
}

TEST(CompressedStoreTest, EarlyExitStopsScan) {
  CompressedStoreOptions opts;
  opts.block_size = 2;
  const auto store = CompressedTripleStore::FromTriples(CuratedTriples(), opts);
  size_t calls = 0;
  store.ForEachMatch(TriplePattern{}, [&calls](const Triple&) {
    ++calls;
    return false;
  });
  EXPECT_EQ(calls, 1u);
}

TEST(CompressedStoreTest, DiskTierEquivalenceAndCacheCounters) {
  datagen::TripleWorkloadConfig config;
  config.seed = 7;
  config.num_triples = 5000;
  const auto triples = datagen::GenerateTripleWorkload(config);
  const auto patterns = datagen::GeneratePatternWorkload(triples, 200, 5);
  const TripleStore reference = ReferenceStore(triples);

  CompressedStoreOptions opts;
  opts.block_size = 128;
  const auto mem = CompressedTripleStore::FromTriples(triples, opts);
  const std::string path = TempPath("disk_tier.blocks");
  ASSERT_TRUE(mem.WriteFile(path).ok());

  auto& registry = obs::MetricsRegistry::Global();
  const uint64_t hits_before = registry.counter("rdf.block_cache_hits").Value();
  const uint64_t misses_before =
      registry.counter("rdf.block_cache_misses").Value();

  auto opened = CompressedTripleStore::OpenFile(path, opts);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ASSERT_TRUE(opened->disk_backed());
  ExpectEquivalent(reference, *opened, patterns);
  // Run the patterns again: the second pass must hit the cache.
  ExpectEquivalent(reference, *opened, patterns);

  EXPECT_GT(registry.counter("rdf.block_cache_misses").Value(), misses_before);
  EXPECT_GT(registry.counter("rdf.block_cache_hits").Value(), hits_before);
  ASSERT_NE(opened->cache(), nullptr);
  EXPECT_GT(opened->cache()->entries(), 0u);
  std::remove(path.c_str());
}

TEST(CompressedStoreTest, CacheEvictionAndInvalidation) {
  const auto triples = CuratedTriples();
  CompressedStoreOptions opts;
  opts.block_size = 1;                // Ten blocks per ordering.
  opts.cache_budget_bytes = 1;        // Evict on every insert, keep one.
  const auto mem = CompressedTripleStore::FromTriples(triples, opts);
  const std::string path = TempPath("evict.blocks");
  ASSERT_TRUE(mem.WriteFile(path).ok());

  auto& evictions = obs::MetricsRegistry::Global().counter(
      "rdf.block_cache_evictions");
  const uint64_t evictions_before = evictions.Value();
  auto opened = CompressedTripleStore::OpenFile(path, opts);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened->Match(TriplePattern{}).size(), triples.size());
  EXPECT_GT(evictions.Value(), evictions_before);
  ASSERT_NE(opened->cache(), nullptr);
  EXPECT_LE(opened->cache()->entries(), 1u);  // Budget keeps one survivor.

  const uint64_t epoch_before = opened->cache()->epoch();
  opened->InvalidateCache();
  EXPECT_EQ(opened->cache()->epoch(), epoch_before + 1);
  EXPECT_EQ(opened->cache()->entries(), 0u);
  // Still fully queryable after invalidation.
  EXPECT_EQ(opened->Match(TriplePattern{}).size(), triples.size());
  std::remove(path.c_str());
}

TEST(CompressedStoreTest, OpenRejectsBadMagic) {
  const auto store = CompressedTripleStore::FromTriples(CuratedTriples());
  const std::string path = TempPath("badmagic.blocks");
  ASSERT_TRUE(store.WriteFile(path).ok());
  std::string bytes = ReadFileBytes(path);
  bytes[0] ^= 0x7f;
  WriteFileBytes(path, bytes);
  auto opened = CompressedTripleStore::OpenFile(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(CompressedStoreTest, OpenRejectsTruncation) {
  const auto store = CompressedTripleStore::FromTriples(CuratedTriples());
  const std::string path = TempPath("truncated.blocks");
  ASSERT_TRUE(store.WriteFile(path).ok());
  const std::string bytes = ReadFileBytes(path);
  // Every proper prefix must be rejected cleanly (never UB / crash).
  for (size_t keep : {size_t{4}, size_t{20}, size_t{40}, bytes.size() / 2,
                      bytes.size() - 1}) {
    WriteFileBytes(path, bytes.substr(0, keep));
    auto opened = CompressedTripleStore::OpenFile(path);
    ASSERT_FALSE(opened.ok()) << "prefix of " << keep << " bytes";
    EXPECT_EQ(opened.status().code(), StatusCode::kParseError);
  }
  std::remove(path.c_str());
}

TEST(CompressedStoreTest, OpenRejectsCorruptFenceCount) {
  CompressedStoreOptions opts;
  opts.block_size = 4;
  const auto store = CompressedTripleStore::FromTriples(CuratedTriples(), opts);
  const std::string path = TempPath("badcount.blocks");
  ASSERT_TRUE(store.WriteFile(path).ok());
  std::string bytes = ReadFileBytes(path);
  // First block meta of the SPO ordering starts at byte 32 (after magic,
  // version, block_size, num_triples, nblocks); its count field sits after
  // the two 12-byte fence keys.
  const size_t count_off = 32 + 24;
  for (uint32_t bad : {0u, 5u, 0xffffffffu}) {  // 0, > block_size, huge.
    std::string mutated = bytes;
    for (int i = 0; i < 4; ++i) {
      mutated[count_off + i] = static_cast<char>((bad >> (8 * i)) & 0xff);
    }
    WriteFileBytes(path, mutated);
    auto opened = CompressedTripleStore::OpenFile(path);
    ASSERT_FALSE(opened.ok()) << "count=" << bad;
    EXPECT_EQ(opened.status().code(), StatusCode::kParseError);
  }
  std::remove(path.c_str());
}

TEST(CompressedStoreTest, OpenRejectsCorruptBlockLength) {
  CompressedStoreOptions opts;
  opts.block_size = 4;
  const auto store = CompressedTripleStore::FromTriples(CuratedTriples(), opts);
  const std::string path = TempPath("badlen.blocks");
  ASSERT_TRUE(store.WriteFile(path).ok());
  std::string bytes = ReadFileBytes(path);
  // Length field of the first SPO block: meta base 32, +24 fences, +4
  // count, +8 offset.
  const size_t length_off = 32 + 24 + 4 + 8;
  const uint32_t bad = 0x7fffffff;  // Extends far past the payload section.
  for (int i = 0; i < 4; ++i) {
    bytes[length_off + i] = static_cast<char>((bad >> (8 * i)) & 0xff);
  }
  WriteFileBytes(path, bytes);
  auto opened = CompressedTripleStore::OpenFile(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(CompressedStoreTest, OpenRejectsPayloadSizeMismatch) {
  const auto store = CompressedTripleStore::FromTriples(CuratedTriples());
  const std::string path = TempPath("extrabytes.blocks");
  ASSERT_TRUE(store.WriteFile(path).ok());
  std::string bytes = ReadFileBytes(path);
  bytes.push_back('\0');  // Trailing garbage.
  WriteFileBytes(path, bytes);
  auto opened = CompressedTripleStore::OpenFile(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(CompressedStoreTest, CorruptPayloadBlockIsSkippedAndCounted) {
  datagen::TripleWorkloadConfig config;
  config.seed = 3;
  config.num_triples = 1000;
  const auto triples = datagen::GenerateTripleWorkload(config);
  CompressedStoreOptions opts;
  opts.block_size = 64;
  const auto mem = CompressedTripleStore::FromTriples(triples, opts);
  const std::string path = TempPath("badpayload.blocks");
  ASSERT_TRUE(mem.WriteFile(path).ok());

  // Flip the first payload byte: the header stays valid, but the first SPO
  // block fails its checksum at decode time.
  std::string bytes = ReadFileBytes(path);
  const size_t payload_start = bytes.size() - mem.PayloadBytes();
  bytes[payload_start] ^= 0x55;
  WriteFileBytes(path, bytes);

  auto& errors =
      obs::MetricsRegistry::Global().counter("rdf.block_decode_errors");
  const uint64_t errors_before = errors.Value();
  auto opened = CompressedTripleStore::OpenFile(path, opts);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const size_t scanned = opened->Match(TriplePattern{}).size();
  // The corrupt block's triples are skipped, everything else is served.
  EXPECT_LT(scanned, opened->size());
  EXPECT_GE(scanned, opened->size() - opts.block_size);
  EXPECT_GT(errors.Value(), errors_before);
  std::remove(path.c_str());
}

TEST(CompressedStoreTest, DatasetBackendSwapKeepsQueriesIdentical) {
  Dataset ds("swap-test");
  ds.AddIriTriple("http://e/a", "http://p/knows", "http://e/b");
  ds.AddIriTriple("http://e/b", "http://p/knows", "http://e/c");
  ds.AddLiteralTriple("http://e/a", "http://p/name", Term::Literal("Ada"));
  const size_t n = ds.num_triples();
  const auto subjects_before = ds.source().DistinctSubjects();

  ds.Compress();
  ASSERT_TRUE(ds.is_compressed());
  EXPECT_EQ(ds.num_triples(), n);
  EXPECT_EQ(ds.source().DistinctSubjects(), subjects_before);

  // Mutation decompresses transparently and lands in the mutable store.
  ds.AddIriTriple("http://e/c", "http://p/knows", "http://e/a");
  EXPECT_FALSE(ds.is_compressed());
  EXPECT_EQ(ds.num_triples(), n + 1);

  const std::string path = TempPath("swap.blocks");
  ASSERT_TRUE(ds.CompressToDisk(path).ok());
  ASSERT_TRUE(ds.is_compressed());
  EXPECT_EQ(ds.num_triples(), n + 1);
  EXPECT_EQ(ds.compressed()->disk_backed(), true);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace alex::rdf
