#include "core/partitioned.h"

#include <gtest/gtest.h>

#include "datagen/generator.h"

namespace alex::core {
namespace {

using feedback::PackPair;

class PartitionedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::ScenarioConfig c;
    c.seed = 21;
    c.num_shared = 30;
    c.num_left_only = 20;
    c.num_right_only = 10;
    c.domains = {"person"};
    c.value_noise = 0.2;
    pair_ = datagen::GenerateScenario(c);
    config_.num_partitions = 4;
    config_.num_threads = 2;
    config_.episode_size = 10;
  }

  datagen::GeneratedPair pair_;
  AlexConfig config_;
};

TEST_F(PartitionedTest, RoundRobinPartitioning) {
  PartitionedAlex alex(&pair_.left, &pair_.right, config_);
  EXPECT_EQ(alex.num_partitions(), 4u);
  EXPECT_EQ(alex.PartitionOf(0), 0u);
  EXPECT_EQ(alex.PartitionOf(1), 1u);
  EXPECT_EQ(alex.PartitionOf(5), 1u);
  EXPECT_EQ(alex.PartitionOf(7), 3u);
}

TEST_F(PartitionedTest, BuildReturnsPerPartitionTimes) {
  PartitionedAlex alex(&pair_.left, &pair_.right, config_);
  std::vector<double> seconds = alex.Build();
  EXPECT_EQ(seconds.size(), 4u);
  for (double s : seconds) EXPECT_GE(s, 0.0);
}

TEST_F(PartitionedTest, PartitionSpacesCoverDistinctLeftEntities) {
  PartitionedAlex alex(&pair_.left, &pair_.right, config_);
  alex.Build();
  for (size_t p = 0; p < alex.num_partitions(); ++p) {
    for (feedback::PairKey pairkey : alex.space(p).pairs()) {
      EXPECT_EQ(alex.PartitionOf(feedback::PairLeft(pairkey)), p);
    }
  }
}

TEST_F(PartitionedTest, CandidateRoutingAndUnion) {
  PartitionedAlex alex(&pair_.left, &pair_.right, config_);
  alex.Build();
  std::vector<feedback::PairKey> initial = {PackPair(0, 0), PackPair(1, 1),
                                            PackPair(6, 2)};
  alex.InitializeCandidates(initial);
  EXPECT_EQ(alex.NumCandidates(), 3u);
  EXPECT_EQ(alex.Candidates().size(), 3u);
  EXPECT_EQ(alex.CandidateVector().size(), 3u);
  // Each candidate lives in the partition of its left entity.
  EXPECT_TRUE(alex.engine(0).candidates().count(PackPair(0, 0)));
  EXPECT_TRUE(alex.engine(1).candidates().count(PackPair(1, 1)));
  EXPECT_TRUE(alex.engine(2).candidates().count(PackPair(6, 2)));
  EXPECT_FALSE(alex.engine(3).candidates().count(PackPair(0, 0)));
}

TEST_F(PartitionedTest, FeedbackRoutedToOwningPartition) {
  PartitionedAlex alex(&pair_.left, &pair_.right, config_);
  alex.Build();
  alex.InitializeCandidates(
      std::vector<feedback::PairKey>{PackPair(2, 2), PackPair(3, 3)});
  alex.ProcessFeedback(feedback::FeedbackItem{2, 2, false});
  EXPECT_FALSE(alex.engine(2).candidates().count(PackPair(2, 2)));
  EXPECT_TRUE(alex.engine(3).candidates().count(PackPair(3, 3)));
  EXPECT_EQ(alex.NumCandidates(), 1u);
}

TEST_F(PartitionedTest, BatchProcessingEqualsSequential) {
  std::vector<feedback::FeedbackItem> items;
  std::vector<feedback::PairKey> initial;
  for (uint32_t i = 0; i < 20; ++i) {
    initial.push_back(PackPair(i % 50, i % 20));
    items.push_back(
        feedback::FeedbackItem{i % 50, i % 20, (i % 3) != 0});
  }

  PartitionedAlex sequential(&pair_.left, &pair_.right, config_);
  sequential.Build();
  sequential.InitializeCandidates(initial);
  for (const auto& item : items) sequential.ProcessFeedback(item);

  PartitionedAlex batched(&pair_.left, &pair_.right, config_);
  batched.Build();
  batched.InitializeCandidates(initial);
  batched.ProcessFeedbackBatch(items);

  EXPECT_EQ(sequential.Candidates(), batched.Candidates());
}

TEST_F(PartitionedTest, BatchProcessingAggregatesStats) {
  PartitionedAlex alex(&pair_.left, &pair_.right, config_);
  alex.Build();
  alex.InitializeCandidates(
      std::vector<feedback::PairKey>{PackPair(0, 0), PackPair(1, 1)});
  alex.ProcessFeedbackBatch({feedback::FeedbackItem{0, 0, false},
                             feedback::FeedbackItem{1, 1, false}});
  EngineEpisodeStats stats = alex.EndEpisode();
  EXPECT_EQ(stats.negative_items, 2u);
  EXPECT_EQ(stats.links_removed, 2u);
}

TEST_F(PartitionedTest, EndEpisodeAggregatesStats) {
  PartitionedAlex alex(&pair_.left, &pair_.right, config_);
  alex.Build();
  alex.InitializeCandidates(
      std::vector<feedback::PairKey>{PackPair(0, 0), PackPair(1, 1)});
  alex.ProcessFeedback(feedback::FeedbackItem{0, 0, false});
  alex.ProcessFeedback(feedback::FeedbackItem{1, 1, false});
  EngineEpisodeStats stats = alex.EndEpisode();
  EXPECT_EQ(stats.feedback_items, 2u);
  EXPECT_EQ(stats.negative_items, 2u);
  EXPECT_EQ(stats.links_removed, 2u);
}

// The commit-delta window must span feedback routing, not just
// EndEpisode(): ProcessFeedback mutates candidates directly (negative
// items erase), so a delta taken around EndEpisode() alone reports
// nothing. This pins the contract the link service's epoch commits
// depend on.
TEST_F(PartitionedTest, CommitFeedbackBatchCapturesFeedbackWindowDeltas) {
  PartitionedAlex alex(&pair_.left, &pair_.right, config_);
  alex.Build();
  alex.InitializeCandidates(
      std::vector<feedback::PairKey>{PackPair(0, 0), PackPair(1, 1),
                                     PackPair(2, 2)});

  PartitionedAlex::EpisodeCommit commit = alex.CommitFeedbackBatch(
      {feedback::FeedbackItem{0, 0, false}, feedback::FeedbackItem{1, 1,
                                                                   false}});
  EXPECT_EQ(commit.stats.negative_items, 2u);
  EXPECT_EQ(commit.stats.links_removed, 2u);
  // The rejected links appear in the removed delta, sorted ascending.
  ASSERT_EQ(commit.removed.size(), 2u);
  EXPECT_EQ(commit.removed[0], PackPair(0, 0));
  EXPECT_EQ(commit.removed[1], PackPair(1, 1));
  // Exploration may add links on positive paths; here both items were
  // negative with no survivors of their state-action, so nothing new.
  EXPECT_EQ(alex.NumCandidates(), 1u);

  // Counter-case: routing the batch first and only then asking for the
  // episode-end delta misses the feedback-driven removals entirely.
  PartitionedAlex late(&pair_.left, &pair_.right, config_);
  late.Build();
  late.InitializeCandidates(
      std::vector<feedback::PairKey>{PackPair(0, 0), PackPair(1, 1),
                                     PackPair(2, 2)});
  late.ProcessFeedbackBatch({feedback::FeedbackItem{0, 0, false},
                             feedback::FeedbackItem{1, 1, false}});
  PartitionedAlex::EpisodeCommit tail = late.EndEpisodeWithDelta();
  EXPECT_TRUE(tail.removed.empty());
  EXPECT_EQ(tail.stats.links_removed, 2u);  // Stats still aggregate.
}

TEST_F(PartitionedTest, ScoredLinkInitialization) {
  PartitionedAlex alex(&pair_.left, &pair_.right, config_);
  alex.Build();
  std::vector<paris::ScoredLink> links = {{0, 0, 0.99}, {1, 1, 0.97}};
  alex.InitializeCandidates(links);
  EXPECT_EQ(alex.NumCandidates(), 2u);
}

TEST_F(PartitionedTest, AggregatedSpaceStatsSumPartitions) {
  PartitionedAlex alex(&pair_.left, &pair_.right, config_);
  alex.Build();
  LinkSpace::BuildStats total = alex.AggregatedSpaceStats();
  uint64_t sum_possible = 0;
  uint64_t sum_kept = 0;
  for (size_t p = 0; p < alex.num_partitions(); ++p) {
    sum_possible += alex.space(p).stats().total_possible;
    sum_kept += alex.space(p).stats().kept_pairs;
  }
  EXPECT_EQ(total.total_possible, sum_possible);
  EXPECT_EQ(total.kept_pairs, sum_kept);
  EXPECT_EQ(total.total_possible,
            static_cast<uint64_t>(pair_.left.num_entities()) *
                pair_.right.num_entities());
}

TEST_F(PartitionedTest, SinglePartitionDegenerateCase) {
  config_.num_partitions = 1;
  PartitionedAlex alex(&pair_.left, &pair_.right, config_);
  alex.Build();
  EXPECT_EQ(alex.num_partitions(), 1u);
  EXPECT_EQ(alex.PartitionOf(49), 0u);
}

TEST_F(PartitionedTest, ZeroPartitionsClampedToOne) {
  config_.num_partitions = 0;
  PartitionedAlex alex(&pair_.left, &pair_.right, config_);
  EXPECT_EQ(alex.num_partitions(), 1u);
}

TEST_F(PartitionedTest, MorePartitionsThanEntitiesIsSafe) {
  config_.num_partitions = 1000;
  PartitionedAlex alex(&pair_.left, &pair_.right, config_);
  alex.Build();
  EXPECT_EQ(alex.num_partitions(), 1000u);
  EXPECT_EQ(alex.AggregatedSpaceStats().total_possible,
            static_cast<uint64_t>(pair_.left.num_entities()) *
                pair_.right.num_entities());
}

}  // namespace
}  // namespace alex::core
