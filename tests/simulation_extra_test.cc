// Additional simulation-level behaviours: episode bookkeeping fields, the
// blacklist/rollback toggles reaching the engines, and scenario presets
// driving distinct initial-quality profiles.

#include <gtest/gtest.h>

#include "datagen/scenarios.h"
#include "simulation/simulation.h"

namespace alex::simulation {
namespace {

SimulationConfig TinyConfig(uint64_t seed) {
  SimulationConfig config;
  config.scenario.name = "tiny";
  config.scenario.seed = seed;
  config.scenario.num_shared = 30;
  config.scenario.num_left_only = 20;
  config.scenario.num_right_only = 10;
  config.scenario.domains = {"organization"};
  config.scenario.value_noise = 0.35;
  config.scenario.ambiguity = 0.3;
  config.alex.episode_size = 40;
  config.alex.num_partitions = 2;
  config.alex.max_episodes = 15;
  return config;
}

TEST(SimulationExtraTest, EpisodeRecordsCarryActivityCounters) {
  RunResult r = Simulation(TinyConfig(91)).Run();
  ASSERT_GE(r.episodes.size(), 2u);
  const EpisodeRecord& first = r.episodes[1];
  EXPECT_EQ(first.positive_feedback + first.negative_feedback, 40u);
  EXPECT_GT(first.links_added + first.links_removed, 0u);
  EXPECT_GE(first.seconds, 0.0);
  // Episode 0 is the initial snapshot: no activity.
  EXPECT_EQ(r.episodes[0].positive_feedback, 0u);
  EXPECT_EQ(r.episodes[0].links_changed, 0u);
}

TEST(SimulationExtraTest, BuildTimingFieldsPopulated) {
  RunResult r = Simulation(TinyConfig(92)).Run();
  EXPECT_GT(r.build_seconds_max, 0.0);
  EXPECT_GT(r.build_seconds_avg, 0.0);
  EXPECT_LE(r.build_seconds_avg, r.build_seconds_max + 1e-9);
  EXPECT_GT(r.space_stats.total_possible, 0u);
  EXPECT_GT(r.space_stats.kept_pairs, 0u);
  EXPECT_LE(r.space_stats.kept_pairs, r.space_stats.candidate_pairs);
}

TEST(SimulationExtraTest, DisablingOptimizationsChangesTrajectory) {
  SimulationConfig base = TinyConfig(93);
  SimulationConfig no_optims = base;
  no_optims.alex.use_blacklist = false;
  no_optims.alex.use_rollback = false;
  RunResult a = Simulation(base).Run();
  RunResult b = Simulation(no_optims).Run();
  // Same data and oracle stream shape, but the candidate-set trajectories
  // must diverge once optimizations are off.
  bool diverged = false;
  const size_t common = std::min(a.episodes.size(), b.episodes.size());
  for (size_t i = 0; i < common; ++i) {
    if (a.episodes[i].metrics.candidates != b.episodes[i].metrics.candidates) {
      diverged = true;
      break;
    }
  }
  EXPECT_TRUE(diverged || a.episodes.size() != b.episodes.size());
}

// The storage backend is a pure representation change: a run on the
// compressed (or disk-backed compressed) store must produce the exact
// same episode series as the uncompressed reference — same feedback,
// same link deltas, same P/R/F at every episode.
TEST(SimulationExtraTest, StorageBackendsProduceIdenticalRuns) {
  auto run_with = [](core::AlexConfig::StorageBackend backend) {
    SimulationConfig config = TinyConfig(17);
    config.alex.storage_backend = backend;
    config.alex.storage_disk_dir = ::testing::TempDir();
    return Simulation(config).Run();
  };
  const RunResult reference = run_with(core::AlexConfig::StorageBackend::kUncompressed);
  for (auto backend : {core::AlexConfig::StorageBackend::kCompressed,
                       core::AlexConfig::StorageBackend::kCompressedDisk}) {
    const RunResult r = run_with(backend);
    ASSERT_EQ(r.episodes.size(), reference.episodes.size());
    for (size_t i = 0; i < reference.episodes.size(); ++i) {
      const EpisodeRecord& a = reference.episodes[i];
      const EpisodeRecord& b = r.episodes[i];
      EXPECT_EQ(a.metrics.precision, b.metrics.precision) << i;
      EXPECT_EQ(a.metrics.recall, b.metrics.recall) << i;
      EXPECT_EQ(a.metrics.candidates, b.metrics.candidates) << i;
      EXPECT_EQ(a.positive_feedback, b.positive_feedback) << i;
      EXPECT_EQ(a.negative_feedback, b.negative_feedback) << i;
      EXPECT_EQ(a.links_added, b.links_added) << i;
      EXPECT_EQ(a.links_removed, b.links_removed) << i;
    }
    EXPECT_EQ(r.converged_episode, reference.converged_episode);
    EXPECT_EQ(r.new_links_discovered, reference.new_links_discovered);
    EXPECT_EQ(r.initial_links, reference.initial_links);
  }
}

TEST(SimulationExtraTest, PresetProfilesAreDistinct) {
  // Initial (episode-0) profiles of the three DBpedia pairs reproduce the
  // paper's three regimes at scaled size.
  SimulationConfig nyt;
  nyt.scenario = datagen::DbpediaNytimes();
  nyt.alex.max_episodes = 1;
  RunResult r_nyt = Simulation(nyt).Run();
  EXPECT_GT(r_nyt.episodes[0].metrics.precision, 0.7);  // P high.
  EXPECT_LT(r_nyt.episodes[0].metrics.recall, 0.3);     // R low.

  SimulationConfig drug;
  drug.scenario = datagen::DbpediaDrugbank();
  drug.alex.max_episodes = 1;
  RunResult r_drug = Simulation(drug).Run();
  EXPECT_LT(r_drug.episodes[0].metrics.precision, 0.5);  // P low.
  EXPECT_GT(r_drug.episodes[0].metrics.recall, 0.9);     // R high.

  SimulationConfig lexvo;
  lexvo.scenario = datagen::DbpediaLexvo();
  lexvo.alex.max_episodes = 1;
  RunResult r_lex = Simulation(lexvo).Run();
  EXPECT_LT(r_lex.episodes[0].metrics.precision, 0.6);  // Both low.
  EXPECT_LT(r_lex.episodes[0].metrics.recall, 0.6);
}

}  // namespace
}  // namespace alex::simulation
