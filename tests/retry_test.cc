// RetryPolicy backoff, SimClock, and CircuitBreaker unit tests. Everything
// here is deterministic and virtual-time-driven: no test sleeps.

#include "common/retry.h"

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/rng.h"
#include "federation/circuit_breaker.h"

namespace alex {
namespace {

TEST(RetryPolicyTest, BackoffGrowsExponentiallyWithoutJitter) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 0.1;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 10.0;
  policy.jitter_fraction = 0.0;
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(1, nullptr), 0.1);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(2, nullptr), 0.2);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(3, nullptr), 0.4);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(4, nullptr), 0.8);
}

TEST(RetryPolicyTest, BackoffIsCapped) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 1.0;
  policy.backoff_multiplier = 10.0;
  policy.max_backoff_seconds = 5.0;
  policy.jitter_fraction = 0.0;
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(2, nullptr), 5.0);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(50, nullptr), 5.0);  // No overflow.
}

TEST(RetryPolicyTest, JitterIsBoundedAndDeterministic) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 1.0;
  policy.backoff_multiplier = 1.0;
  policy.jitter_fraction = 0.25;
  Rng rng_a(99);
  Rng rng_b(99);
  for (int i = 0; i < 100; ++i) {
    const double a = policy.BackoffSeconds(1, &rng_a);
    EXPECT_GE(a, 0.75);
    EXPECT_LT(a, 1.25);
    // Same seed, same draw sequence: bit-for-bit reproducible.
    EXPECT_DOUBLE_EQ(a, policy.BackoffSeconds(1, &rng_b));
  }
}

TEST(RetryPolicyTest, ZeroFailuresClampedToOne) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 0.1;
  policy.jitter_fraction = 0.0;
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(0, nullptr),
                   policy.BackoffSeconds(1, nullptr));
}

TEST(SimClockTest, SleepAdvancesVirtualTimeOnly) {
  SimClock clock;
  EXPECT_DOUBLE_EQ(clock.NowSeconds(), 0.0);
  clock.SleepSeconds(30.0);  // Would be a real half-minute on SteadyClock.
  EXPECT_DOUBLE_EQ(clock.NowSeconds(), 30.0);
  clock.SleepSeconds(-5.0);  // Negative sleeps are no-ops, not time travel.
  clock.SleepSeconds(0.0);
  EXPECT_DOUBLE_EQ(clock.NowSeconds(), 30.0);
  clock.AdvanceSeconds(0.5);
  EXPECT_DOUBLE_EQ(clock.NowSeconds(), 30.5);
}

class CircuitBreakerTest : public ::testing::Test {
 protected:
  fed::CircuitBreakerConfig Config() {
    fed::CircuitBreakerConfig config;
    config.window = 8;
    config.min_calls = 4;
    config.failure_rate_threshold = 0.5;
    config.cooldown_seconds = 2.0;
    return config;
  }

  SimClock clock_;
};

TEST_F(CircuitBreakerTest, StaysClosedBelowThreshold) {
  fed::CircuitBreaker breaker(Config(), &clock_);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(breaker.AllowCall());
    // 1-in-4 failures: 25% < the 50% threshold.
    if (i % 4 == 0) breaker.RecordFailure();
    else breaker.RecordSuccess();
  }
  EXPECT_EQ(breaker.state(), fed::CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.times_opened(), 0u);
}

TEST_F(CircuitBreakerTest, SingleEarlyFailureDoesNotTrip) {
  // min_calls guards against a 1/1 = 100% failure rate on the first call.
  fed::CircuitBreaker breaker(Config(), &clock_);
  ASSERT_TRUE(breaker.AllowCall());
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), fed::CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.AllowCall());
}

TEST_F(CircuitBreakerTest, TripsOpenAndRejectsFast) {
  fed::CircuitBreaker breaker(Config(), &clock_);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(breaker.AllowCall());
    breaker.RecordFailure();
  }
  EXPECT_EQ(breaker.state(), fed::CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.times_opened(), 1u);
  // While open and inside the cooldown, every admission is rejected.
  clock_.AdvanceSeconds(1.0);
  EXPECT_FALSE(breaker.AllowCall());
  EXPECT_FALSE(breaker.AllowCall());
}

TEST_F(CircuitBreakerTest, HalfOpenAdmitsOneProbeThenRecloses) {
  fed::CircuitBreaker breaker(Config(), &clock_);
  for (int i = 0; i < 4; ++i) {
    breaker.AllowCall();
    breaker.RecordFailure();
  }
  ASSERT_EQ(breaker.state(), fed::CircuitBreaker::State::kOpen);
  clock_.AdvanceSeconds(2.0);  // Cooldown elapses.
  EXPECT_TRUE(breaker.AllowCall());  // The single half-open probe.
  EXPECT_EQ(breaker.state(), fed::CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.AllowCall());  // Concurrent second probe rejected.
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), fed::CircuitBreaker::State::kClosed);
  // The window was cleared: the old failures don't instantly re-trip it.
  ASSERT_TRUE(breaker.AllowCall());
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), fed::CircuitBreaker::State::kClosed);
}

TEST_F(CircuitBreakerTest, HalfOpenFailureReopensAndRestartsCooldown) {
  fed::CircuitBreaker breaker(Config(), &clock_);
  for (int i = 0; i < 4; ++i) {
    breaker.AllowCall();
    breaker.RecordFailure();
  }
  clock_.AdvanceSeconds(2.0);
  ASSERT_TRUE(breaker.AllowCall());  // Half-open probe...
  breaker.RecordFailure();           // ...fails.
  EXPECT_EQ(breaker.state(), fed::CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.times_opened(), 2u);
  clock_.AdvanceSeconds(1.0);        // Cooldown restarted: not elapsed yet.
  EXPECT_FALSE(breaker.AllowCall());
  clock_.AdvanceSeconds(1.0);
  EXPECT_TRUE(breaker.AllowCall());  // New half-open probe after the restart.
}

TEST_F(CircuitBreakerTest, WindowIsRolling) {
  // Old failures fall out of the window as successes arrive, so a burst of
  // failures long ago cannot trip the breaker now.
  fed::CircuitBreakerConfig config = Config();
  config.window = 4;
  fed::CircuitBreaker breaker(config, &clock_);
  for (int i = 0; i < 3; ++i) {
    breaker.AllowCall();
    breaker.RecordFailure();
  }
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(breaker.AllowCall());
    breaker.RecordSuccess();
  }
  EXPECT_EQ(breaker.state(), fed::CircuitBreaker::State::kClosed);
  // Window now holds 4 successes; one failure is a 25% rate — still closed.
  breaker.AllowCall();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), fed::CircuitBreaker::State::kClosed);
}

}  // namespace
}  // namespace alex
