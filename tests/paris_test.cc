#include "paris/paris.h"

#include <gtest/gtest.h>

#include "datagen/scenarios.h"
#include "feedback/ground_truth.h"

namespace alex::paris {
namespace {

using rdf::Term;

void AddPerson(rdf::Dataset* ds, const std::string& prefix, int id,
               const std::string& name, const std::string& birth,
               const std::string& city) {
  const std::string iri = prefix + "/p" + std::to_string(id);
  ds->AddLiteralTriple(iri, prefix + "/name", Term::Literal(name));
  ds->AddLiteralTriple(iri, prefix + "/birth",
                       Term::TypedLiteral(birth, std::string(rdf::kXsdDate)));
  ds->AddLiteralTriple(iri, prefix + "/city", Term::Literal(city));
}

class ParisTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AddPerson(&left_, "http://l", 0, "Alice Arden", "1980-02-03", "Gildern");
    AddPerson(&left_, "http://l", 1, "Bob Belcar", "1975-07-12", "Mardale");
    AddPerson(&left_, "http://l", 2, "Carol Corva", "1990-11-30", "Rostova");
    AddPerson(&left_, "http://l", 3, "Dan Dreston", "1983-01-20", "Gildern");

    // Right: same people 0-2 with renamed predicates, plus one stranger.
    AddPerson(&right_, "http://r", 0, "Alice Arden", "1980-02-03", "Gildern");
    AddPerson(&right_, "http://r", 1, "Bob Belcar", "1975-07-12", "Mardale");
    AddPerson(&right_, "http://r", 2, "Carol Corva", "1990-11-30", "Rostova");
    AddPerson(&right_, "http://r", 9, "Zed Zorva", "1966-06-06", "Pelagos");
    left_.BuildEntityIndex();
    right_.BuildEntityIndex();
  }

  rdf::EntityId L(int id) {
    return *left_.FindEntityByIri("http://l/p" + std::to_string(id));
  }
  rdf::EntityId R(int id) {
    return *right_.FindEntityByIri("http://r/p" + std::to_string(id));
  }

  bool HasLink(const std::vector<ScoredLink>& links, rdf::EntityId l,
               rdf::EntityId r) {
    for (const ScoredLink& link : links) {
      if (link.left == l && link.right == r) return true;
    }
    return false;
  }

  rdf::Dataset left_{"left"};
  rdf::Dataset right_{"right"};
};

TEST_F(ParisTest, LinksCleanDuplicates) {
  ParisLinker linker(&left_, &right_);
  auto links = linker.Run();
  EXPECT_TRUE(HasLink(links, L(0), R(0)));
  EXPECT_TRUE(HasLink(links, L(1), R(1)));
  EXPECT_TRUE(HasLink(links, L(2), R(2)));
}

TEST_F(ParisTest, DoesNotLinkStrangers) {
  ParisLinker linker(&left_, &right_);
  auto links = linker.Run();
  EXPECT_FALSE(HasLink(links, L(3), R(9)));
  for (const ScoredLink& link : links) {
    EXPECT_NE(link.right, R(9));
  }
}

TEST_F(ParisTest, ScoresWithinThresholdAndOne) {
  ParisConfig config;
  ParisLinker linker(&left_, &right_, config);
  for (const ScoredLink& link : linker.Run()) {
    EXPECT_GE(link.score, config.link_threshold);
    EXPECT_LE(link.score, 1.0);
  }
}

TEST_F(ParisTest, HigherThresholdYieldsSubset) {
  ParisConfig loose;
  loose.link_threshold = 0.3;
  ParisConfig strict;
  strict.link_threshold = 0.95;
  auto many = ParisLinker(&left_, &right_, loose).Run();
  auto few = ParisLinker(&left_, &right_, strict).Run();
  EXPECT_GE(many.size(), few.size());
  for (const ScoredLink& link : few) {
    EXPECT_TRUE(HasLink(many, link.left, link.right));
  }
}

TEST_F(ParisTest, OutputSortedByPair) {
  auto links = ParisLinker(&left_, &right_).Run();
  for (size_t i = 1; i < links.size(); ++i) {
    EXPECT_TRUE(std::tie(links[i - 1].left, links[i - 1].right) <
                std::tie(links[i].left, links[i].right));
  }
}

TEST_F(ParisTest, AmbiguousNamesConfusePrecision) {
  // A decoy wearing Alice's name and city: PARIS should link it too (the
  // imperfection ALEX later repairs).
  AddPerson(&right_, "http://r", 100, "Alice Arden", "1958-09-09", "Gildern");
  right_.BuildEntityIndex();
  auto links = ParisLinker(&left_, &right_).Run();
  EXPECT_TRUE(HasLink(links, L(0), R(0)));
  EXPECT_TRUE(HasLink(links, L(0), R(100)));
}

TEST_F(ParisTest, RelationAlignmentsExposeSchemaMapping) {
  ParisLinker linker(&left_, &right_);
  linker.Run();
  const auto& alignments = linker.relation_alignments();
  ASSERT_FALSE(alignments.empty());
  // Sorted descending.
  for (size_t i = 1; i < alignments.size(); ++i) {
    EXPECT_GE(alignments[i - 1].score, alignments[i].score);
  }
  // The (l/name, r/name) pair must be among the aligned relations with a
  // high score: every equivalent pair shares the name value.
  const rdf::TermId lname = *left_.dict().Lookup(Term::Iri("http://l/name"));
  const rdf::TermId rname = *right_.dict().Lookup(Term::Iri("http://r/name"));
  bool found = false;
  for (const auto& a : alignments) {
    if (a.left_pred == lname && a.right_pred == rname) {
      found = true;
      EXPECT_GT(a.score, 0.6);
    }
    EXPECT_GE(a.score, 0.0);
    EXPECT_LE(a.score, 1.0);
  }
  EXPECT_TRUE(found);
}

TEST_F(ParisTest, AlignmentsEmptyBeforeRun) {
  ParisLinker linker(&left_, &right_);
  EXPECT_TRUE(linker.relation_alignments().empty());
}

TEST(ParisEmptyTest, EmptyDatasetsYieldNoLinks) {
  rdf::Dataset l{"l"};
  rdf::Dataset r{"r"};
  auto links = ParisLinker(&l, &r).Run();
  EXPECT_TRUE(links.empty());
}

TEST(NaiveLinkerTest, LinksOnExactSharedValues) {
  rdf::Dataset l{"l"};
  rdf::Dataset r{"r"};
  AddPerson(&l, "http://l", 0, "Alice Arden", "1980-02-03", "Gildern");
  AddPerson(&r, "http://r", 0, "Alice Arden", "1980-02-03", "Gildern");
  AddPerson(&r, "http://r", 1, "Someone Else", "1999-01-01", "Pelagos");
  l.BuildEntityIndex();
  r.BuildEntityIndex();
  auto links = NaiveLabelLinker(l, r, 0.6);
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(links[0].left, *l.FindEntityByIri("http://l/p0"));
  EXPECT_EQ(links[0].right, *r.FindEntityByIri("http://r/p0"));
}

TEST(NaiveLinkerTest, ThresholdFilters) {
  rdf::Dataset l{"l"};
  rdf::Dataset r{"r"};
  AddPerson(&l, "http://l", 0, "Alice Arden", "1980-02-03", "Gildern");
  // Shares only the city (1 of 3 attributes).
  AddPerson(&r, "http://r", 0, "Different Name", "1999-01-01", "Gildern");
  l.BuildEntityIndex();
  r.BuildEntityIndex();
  EXPECT_TRUE(NaiveLabelLinker(l, r, 0.5).empty());
  EXPECT_EQ(NaiveLabelLinker(l, r, 0.2).size(), 1u);
}

TEST(ParisScenarioTest, ReproducesInitialProfiles) {
  // The Drugbank profile: low precision, high recall (paper Fig 2b's start).
  auto pair = datagen::GenerateScenario(datagen::DbpediaDrugbank());
  auto links = ParisLinker(&pair.left, &pair.right).Run();
  size_t correct = 0;
  for (const ScoredLink& link : links) {
    if (pair.truth.Contains(link.left, link.right)) ++correct;
  }
  const double precision = static_cast<double>(correct) / links.size();
  const double recall = static_cast<double>(correct) / pair.truth.size();
  EXPECT_LT(precision, 0.5);
  EXPECT_GT(recall, 0.9);
}

}  // namespace
}  // namespace alex::paris
