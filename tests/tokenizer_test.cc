#include "sparql/tokenizer.h"

#include <gtest/gtest.h>

namespace alex::sparql {
namespace {

std::vector<Token> MustTokenize(std::string_view q) {
  auto r = Tokenize(q);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ValueOr({});
}

TEST(TokenizerTest, KeywordsCaseInsensitive) {
  auto toks = MustTokenize("select Where FILTER distinct LIMIT prefix ask");
  ASSERT_EQ(toks.size(), 8u);  // 7 keywords + end.
  for (int i = 0; i < 7; ++i) EXPECT_EQ(toks[i].kind, TokenKind::kKeyword);
  EXPECT_EQ(toks[0].text, "SELECT");
  EXPECT_EQ(toks[1].text, "WHERE");
  EXPECT_EQ(toks[5].text, "PREFIX");
}

TEST(TokenizerTest, Variables) {
  auto toks = MustTokenize("?x $y ?long_name1");
  EXPECT_EQ(toks[0].kind, TokenKind::kVariable);
  EXPECT_EQ(toks[0].text, "x");
  EXPECT_EQ(toks[1].text, "y");
  EXPECT_EQ(toks[2].text, "long_name1");
}

TEST(TokenizerTest, Iri) {
  auto toks = MustTokenize("<http://example.org/a>");
  EXPECT_EQ(toks[0].kind, TokenKind::kIri);
  EXPECT_EQ(toks[0].text, "http://example.org/a");
}

TEST(TokenizerTest, LessThanVersusIri) {
  // '<' followed by whitespace before any '>' is the comparison operator.
  auto toks = MustTokenize("?x < 5");
  ASSERT_GE(toks.size(), 3u);
  EXPECT_EQ(toks[1].kind, TokenKind::kOp);
  EXPECT_EQ(toks[1].text, "<");
  auto toks2 = MustTokenize("?x <= 5");
  EXPECT_EQ(toks2[1].text, "<=");
}

TEST(TokenizerTest, Operators) {
  auto toks = MustTokenize("= != > >=");
  EXPECT_EQ(toks[0].text, "=");
  EXPECT_EQ(toks[1].text, "!=");
  EXPECT_EQ(toks[2].text, ">");
  EXPECT_EQ(toks[3].text, ">=");
  for (int i = 0; i < 4; ++i) EXPECT_EQ(toks[i].kind, TokenKind::kOp);
}

TEST(TokenizerTest, StringsWithEscapesLangAndDatatype) {
  auto toks = MustTokenize(R"("a\"b" "hi"@en "3"^^<http://dt>)");
  EXPECT_EQ(toks[0].kind, TokenKind::kString);
  EXPECT_EQ(toks[0].text, "a\"b");
  EXPECT_EQ(toks[1].language, "en");
  EXPECT_EQ(toks[2].datatype, "http://dt");
}

TEST(TokenizerTest, Numbers) {
  auto toks = MustTokenize("42 3.14 -7 +2");
  EXPECT_EQ(toks[0].kind, TokenKind::kNumber);
  EXPECT_EQ(toks[0].text, "42");
  EXPECT_EQ(toks[1].text, "3.14");
  EXPECT_EQ(toks[2].text, "-7");
  EXPECT_EQ(toks[3].text, "+2");
}

TEST(TokenizerTest, PrefixedNames) {
  auto toks = MustTokenize("foaf:name :local rdf:type");
  EXPECT_EQ(toks[0].kind, TokenKind::kPrefixedName);
  EXPECT_EQ(toks[0].text, "foaf:name");
  EXPECT_EQ(toks[1].text, ":local");
  EXPECT_EQ(toks[2].text, "rdf:type");
}

TEST(TokenizerTest, AKeyword) {
  auto toks = MustTokenize("?s a ?t");
  EXPECT_EQ(toks[1].kind, TokenKind::kA);
}

TEST(TokenizerTest, PunctuationAndDotTermination) {
  auto toks = MustTokenize("{ } . ( ) *");
  for (int i = 0; i < 6; ++i) EXPECT_EQ(toks[i].kind, TokenKind::kPunct);
}

TEST(TokenizerTest, CommentsIgnored) {
  auto toks = MustTokenize("?x # comment here\n?y");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "x");
  EXPECT_EQ(toks[1].text, "y");
}

TEST(TokenizerTest, EndTokenAlwaysPresent) {
  auto toks = MustTokenize("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokenKind::kEnd);
}

TEST(TokenizerTest, Errors) {
  EXPECT_FALSE(Tokenize("?").ok());                // Empty variable.
  EXPECT_FALSE(Tokenize("\"unterminated").ok());   // Unterminated string.
  EXPECT_FALSE(Tokenize("notakeyword").ok());      // Unknown bare word.
  EXPECT_FALSE(Tokenize("@").ok());                // Stray character.
}

TEST(TokenizerTest, OffsetsPointIntoInput) {
  auto toks = MustTokenize("?x ?y");
  EXPECT_EQ(toks[0].offset, 0u);
  EXPECT_EQ(toks[1].offset, 3u);
}

}  // namespace
}  // namespace alex::sparql
