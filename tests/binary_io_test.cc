#include "rdf/binary_io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/generator.h"
#include "rdf/ntriples.h"

namespace alex::rdf {
namespace {

TEST(BinaryIoTest, EmptyRoundTrip) {
  Dictionary dict;
  TripleStore store;
  std::ostringstream out;
  ASSERT_TRUE(WriteBinaryDataset(dict, store, out).ok());
  Dictionary dict2;
  TripleStore store2;
  std::istringstream in(out.str());
  ASSERT_TRUE(ReadBinaryDataset(in, &dict2, &store2).ok());
  EXPECT_EQ(dict2.size(), 0u);
  EXPECT_EQ(store2.size(), 0u);
}

TEST(BinaryIoTest, RoundTripPreservesEverything) {
  Dictionary dict;
  TripleStore store;
  const TermId s = dict.InternIri("http://s");
  const TermId p = dict.InternIri("http://p");
  const TermId plain = dict.Intern(Term::Literal("plain \"text\"\nwith\tstuff"));
  const TermId typed = dict.Intern(Term::TypedLiteral("5", "http://dt"));
  const TermId lang = dict.Intern(Term::LangLiteral("bonjour", "fr"));
  const TermId blank = dict.Intern(Term::Blank("b0"));
  store.Add(s, p, plain);
  store.Add(s, p, typed);
  store.Add(s, p, lang);
  store.Add(blank, p, s);

  std::ostringstream out;
  ASSERT_TRUE(WriteBinaryDataset(dict, store, out).ok());

  Dictionary dict2;
  TripleStore store2;
  std::istringstream in(out.str());
  ASSERT_TRUE(ReadBinaryDataset(in, &dict2, &store2).ok());
  ASSERT_EQ(dict2.size(), dict.size());
  for (TermId id = 0; id < dict.size(); ++id) {
    EXPECT_EQ(dict2.term(id), dict.term(id)) << id;
  }
  EXPECT_EQ(store2.size(), store.size());
  store.ForEachMatch(TriplePattern{}, [&](const Triple& t) {
    EXPECT_TRUE(store2.Contains(t));
    return true;
  });
}

TEST(BinaryIoTest, GeneratedDatasetRoundTrip) {
  datagen::ScenarioConfig config;
  config.seed = 2718;
  config.num_shared = 50;
  config.num_left_only = 30;
  config.num_right_only = 20;
  config.domains = {"person", "drug"};
  datagen::GeneratedPair pair = datagen::GenerateScenario(config);

  std::ostringstream out;
  ASSERT_TRUE(
      WriteBinaryDataset(pair.left.dict(), pair.left.store(), out).ok());
  Dictionary dict2;
  TripleStore store2;
  std::istringstream in(out.str());
  ASSERT_TRUE(ReadBinaryDataset(in, &dict2, &store2).ok());
  EXPECT_EQ(store2.size(), pair.left.store().size());

  // Logical equality via the text serialization.
  std::ostringstream nt1, nt2;
  ASSERT_TRUE(WriteNTriples(pair.left.store(), pair.left.dict(), nt1).ok());
  ASSERT_TRUE(WriteNTriples(store2, dict2, nt2).ok());
  EXPECT_EQ(nt1.str(), nt2.str());
}

TEST(BinaryIoTest, RejectsNonEmptyTargets) {
  Dictionary dict;
  TripleStore store;
  std::ostringstream out;
  ASSERT_TRUE(WriteBinaryDataset(dict, store, out).ok());
  Dictionary nonempty;
  nonempty.InternIri("http://x");
  TripleStore empty_store;
  std::istringstream in(out.str());
  EXPECT_EQ(ReadBinaryDataset(in, &nonempty, &empty_store).code(),
            StatusCode::kInvalidArgument);
}

TEST(BinaryIoTest, RejectsBadMagic) {
  Dictionary dict;
  TripleStore store;
  std::istringstream in("NOTMAGIC00000000");
  EXPECT_EQ(ReadBinaryDataset(in, &dict, &store).code(),
            StatusCode::kParseError);
}

TEST(BinaryIoTest, RejectsTruncation) {
  Dictionary dict;
  TripleStore store;
  dict.InternIri("http://s");
  std::ostringstream out;
  ASSERT_TRUE(WriteBinaryDataset(dict, store, out).ok());
  const std::string full = out.str();
  // Every strict prefix must fail cleanly.
  for (size_t cut : {8u, 12u, 17u}) {
    if (cut >= full.size()) continue;
    Dictionary d2;
    TripleStore s2;
    std::istringstream in(full.substr(0, cut));
    EXPECT_FALSE(ReadBinaryDataset(in, &d2, &s2).ok()) << "cut=" << cut;
  }
}

TEST(BinaryIoTest, RoundTripsNearMaxTermIdTriples) {
  // The dictionary caps real ids well below UINT32_MAX, but the triple
  // section must round-trip any id the dictionary declares — exercise the
  // top of the range the format can actually carry.
  Dictionary dict;
  TripleStore store;
  for (int i = 0; i < 300; ++i) {
    dict.InternIri("http://big/" + std::to_string(i));
  }
  const TermId top = static_cast<TermId>(dict.size() - 1);
  store.Add(top, top - 1, top - 2);
  store.Add(0, top, top);
  std::ostringstream out;
  ASSERT_TRUE(WriteBinaryDataset(dict, store, out).ok());
  Dictionary d2;
  TripleStore s2;
  std::istringstream in(out.str());
  ASSERT_TRUE(ReadBinaryDataset(in, &d2, &s2).ok());
  EXPECT_TRUE(s2.Contains(Triple{top, top - 1, top - 2}));
  EXPECT_TRUE(s2.Contains(Triple{0, top, top}));
}

TEST(BinaryIoTest, RejectsCorruptLengthField) {
  // Blow up a length prefix so it claims far more bytes than remain; the
  // bounds-checked reader must fail before allocating or overreading.
  Dictionary dict;
  TripleStore store;
  dict.InternIri("http://victim");
  std::ostringstream out;
  ASSERT_TRUE(WriteBinaryDataset(dict, store, out).ok());
  std::string bytes = out.str();
  // The term value's u64 length prefix is the first varint-free length
  // field after the magic + counts; force every length-prefix candidate to
  // a huge value and require a clean ParseError each time.
  bool rejected_any = false;
  for (size_t off = 8; off + 8 <= bytes.size(); ++off) {
    std::string mutated = bytes;
    for (int i = 0; i < 8; ++i) mutated[off + i] = '\x7f';
    Dictionary d2;
    TripleStore s2;
    std::istringstream in(mutated);
    const Status st = ReadBinaryDataset(in, &d2, &s2);
    if (!st.ok()) rejected_any = true;
  }
  EXPECT_TRUE(rejected_any);
}

TEST(BinaryIoTest, RejectsOutOfRangeTripleIds) {
  // Hand-craft: magic + 1 term + 1 triple with id 7.
  std::ostringstream out;
  Dictionary dict;
  TripleStore store;
  dict.InternIri("http://only");
  ASSERT_TRUE(WriteBinaryDataset(dict, store, out).ok());
  std::string bytes = out.str();
  // Patch triple count to 1 and append a bogus triple.
  bytes[bytes.size() - 8] = 1;
  bytes.append(12, '\x07');
  Dictionary d2;
  TripleStore s2;
  std::istringstream in(bytes);
  EXPECT_FALSE(ReadBinaryDataset(in, &d2, &s2).ok());
}

}  // namespace
}  // namespace alex::rdf
