// Property-style invariant checks on the ALEX engine: random feedback
// sequences over generated scenarios must never violate the structural
// invariants of Algorithm 1 and the Section 6.3 optimizations.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/partitioned.h"
#include "datagen/generator.h"
#include "feedback/oracle.h"

namespace alex::core {
namespace {

class EngineInvariantsTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    datagen::ScenarioConfig scenario;
    scenario.seed = GetParam();
    scenario.num_shared = 40;
    scenario.num_left_only = 30;
    scenario.num_right_only = 15;
    scenario.domains = {"person"};
    scenario.value_noise = 0.4;
    scenario.ambiguity = 0.5;
    pair_ = datagen::GenerateScenario(scenario);
    lefts_.clear();
    for (rdf::EntityId e = 0; e < pair_.left.num_entities(); ++e) {
      lefts_.push_back(e);
    }
    space_.Build(pair_.left, pair_.right, lefts_, 0.3, 20000);
  }

  datagen::GeneratedPair pair_;
  std::vector<rdf::EntityId> lefts_;
  LinkSpace space_;
};

TEST_P(EngineInvariantsTest, CandidatesNeverIntersectBlacklist) {
  AlexConfig config;
  config.episode_size = 20;
  AlexEngine engine(&space_, config, GetParam());
  // Seed with a few ground-truth links.
  std::vector<feedback::PairKey> initial(pair_.truth.pairs().begin(),
                                         pair_.truth.pairs().end());
  initial.resize(std::min<size_t>(initial.size(), 10));
  engine.InitializeCandidates(initial);

  feedback::Oracle oracle(&pair_.truth, 0.1, GetParam() ^ 0xabcd);
  for (int episode = 0; episode < 8; ++episode) {
    for (int i = 0; i < 20; ++i) {
      std::vector<feedback::PairKey> candidates(engine.candidates().begin(),
                                                engine.candidates().end());
      auto item = oracle.SampleAndJudge(candidates);
      if (!item) break;
      engine.ProcessFeedback(*item);
      // Invariant: no candidate is blacklisted.
      for (feedback::PairKey key : engine.candidates()) {
        ASSERT_FALSE(engine.IsBlacklisted(key));
      }
    }
    engine.EndEpisode();
  }
}

TEST_P(EngineInvariantsTest, DeterministicAcrossIdenticalRuns) {
  auto run = [this]() {
    AlexConfig config;
    config.episode_size = 15;
    AlexEngine engine(&space_, config, 777);
    std::vector<feedback::PairKey> initial(pair_.truth.pairs().begin(),
                                           pair_.truth.pairs().end());
    std::sort(initial.begin(), initial.end());
    initial.resize(std::min<size_t>(initial.size(), 8));
    engine.InitializeCandidates(initial);
    feedback::Oracle oracle(&pair_.truth, 0.0, 4242);
    for (int episode = 0; episode < 5; ++episode) {
      for (int i = 0; i < 15; ++i) {
        std::vector<feedback::PairKey> candidates(
            engine.candidates().begin(), engine.candidates().end());
        std::sort(candidates.begin(), candidates.end());
        auto item = oracle.SampleAndJudge(candidates);
        if (!item) break;
        engine.ProcessFeedback(*item);
      }
      engine.EndEpisode();
    }
    std::vector<feedback::PairKey> result(engine.candidates().begin(),
                                          engine.candidates().end());
    std::sort(result.begin(), result.end());
    return result;
  };
  EXPECT_EQ(run(), run());
}

TEST_P(EngineInvariantsTest, ExploredLinksAreAlwaysInsideTheSpace) {
  AlexConfig config;
  config.episode_size = 20;
  AlexEngine engine(&space_, config, GetParam());
  std::vector<feedback::PairKey> initial(pair_.truth.pairs().begin(),
                                         pair_.truth.pairs().end());
  engine.InitializeCandidates(initial);
  const std::unordered_set<feedback::PairKey> seeded(initial.begin(),
                                                     initial.end());
  feedback::Oracle oracle(&pair_.truth, 0.0, GetParam());
  for (int i = 0; i < 120; ++i) {
    std::vector<feedback::PairKey> candidates(engine.candidates().begin(),
                                              engine.candidates().end());
    auto item = oracle.SampleAndJudge(candidates);
    if (!item) break;
    engine.ProcessFeedback(*item);
  }
  for (feedback::PairKey key : engine.candidates()) {
    if (!seeded.count(key)) {
      EXPECT_TRUE(space_.Contains(key))
          << "explored link escaped the search space";
    }
  }
}

TEST_P(EngineInvariantsTest, PerfectFeedbackMonotonicallyCleansWrongLinks) {
  AlexConfig config;
  config.episode_size = 30;
  config.epsilon = 0.0;
  AlexEngine engine(&space_, config, GetParam());
  // Seed with truth plus deliberate junk.
  std::vector<feedback::PairKey> initial(pair_.truth.pairs().begin(),
                                         pair_.truth.pairs().end());
  for (uint32_t i = 0; i < 10; ++i) {
    initial.push_back(feedback::PackPair(i, (i + 7) % 15));
  }
  engine.InitializeCandidates(initial);
  feedback::Oracle oracle(&pair_.truth, 0.0, GetParam());
  // Under perfect feedback a link judged negative can only disappear.
  for (int episode = 0; episode < 10; ++episode) {
    for (int i = 0; i < 30; ++i) {
      std::vector<feedback::PairKey> candidates(engine.candidates().begin(),
                                                engine.candidates().end());
      auto item = oracle.SampleAndJudge(candidates);
      if (!item) break;
      engine.ProcessFeedback(*item);
      if (!item->positive) {
        ASSERT_FALSE(engine.candidates().count(item->key()));
      }
    }
    engine.EndEpisode();
  }
  // All truth links seeded initially and never negatively judged remain.
  size_t kept_truth = 0;
  for (feedback::PairKey key : pair_.truth.pairs()) {
    if (engine.candidates().count(key)) ++kept_truth;
  }
  EXPECT_EQ(kept_truth, pair_.truth.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineInvariantsTest,
                         ::testing::Values(3, 17, 301, 9999));

}  // namespace
}  // namespace alex::core
