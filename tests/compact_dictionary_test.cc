#include "rdf/compact_dictionary.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace alex::rdf {
namespace {

Dictionary MixedDictionary() {
  Dictionary dict;
  dict.InternIri("http://example.org/person/42");
  dict.InternIri("http://example.org/person/7");
  dict.InternLiteral("Ada Lovelace");
  dict.Intern(Term::TypedLiteral("1815", std::string(kXsdInteger)));
  dict.Intern(Term::TypedLiteral("3.14", std::string(kXsdDouble)));
  dict.Intern(Term::LangLiteral("bonjour", "fr"));
  dict.Intern(Term::LangLiteral("hello", "en"));
  dict.Intern(Term::Blank("b0"));
  dict.InternIri("http://example.org/place/1");
  dict.InternLiteral("");  // Empty lexical form.
  return dict;
}

TEST(CompactDictionaryTest, PreservesIdsAndTerms) {
  const Dictionary dict = MixedDictionary();
  const CompactDictionary compact = CompactDictionary::Build(dict);
  ASSERT_EQ(compact.size(), dict.size());
  for (TermId id = 0; id < dict.size(); ++id) {
    EXPECT_EQ(compact.term(id), dict.term(id)) << "id " << id;
  }
}

TEST(CompactDictionaryTest, LookupFindsEveryTermAndOnlyThose) {
  const Dictionary dict = MixedDictionary();
  const CompactDictionary compact = CompactDictionary::Build(dict);
  for (TermId id = 0; id < dict.size(); ++id) {
    auto found = compact.Lookup(dict.term(id));
    ASSERT_TRUE(found.has_value()) << "id " << id;
    EXPECT_EQ(*found, id);
  }
  EXPECT_FALSE(compact.Lookup(Term::Iri("http://absent")).has_value());
  EXPECT_FALSE(compact.Lookup(Term::Literal("Ada")).has_value());
  // Same lexical form, different kind/datatype/language must not collide.
  EXPECT_FALSE(compact.Lookup(Term::Iri("Ada Lovelace")).has_value());
  EXPECT_FALSE(compact.Lookup(Term::LangLiteral("hello", "de")).has_value());
}

TEST(CompactDictionaryTest, EmptyDictionary) {
  const Dictionary dict;
  const CompactDictionary compact = CompactDictionary::Build(dict);
  EXPECT_EQ(compact.size(), 0u);
  EXPECT_FALSE(compact.Lookup(Term::Iri("http://a")).has_value());
}

TEST(CompactDictionaryTest, LargeSharedPrefixPoolRoundTripsAndShrinks) {
  // IRIs with long shared prefixes — the case front-coding exists for.
  Dictionary dict;
  Rng rng(11);
  for (size_t i = 0; i < 5000; ++i) {
    dict.InternIri("http://example.org/resource/entity/" +
                   std::to_string(rng.UniformInt(1000000)));
  }
  const CompactDictionary compact = CompactDictionary::Build(dict);
  ASSERT_EQ(compact.size(), dict.size());
  // Spot-check round trips across the whole range plus exhaustive Lookup.
  for (TermId id = 0; id < dict.size(); ++id) {
    EXPECT_EQ(compact.term(id), dict.term(id));
    EXPECT_EQ(compact.Lookup(dict.term(id)), std::optional<TermId>(id));
  }
  EXPECT_LT(compact.ApproxMemoryBytes(), dict.ApproxMemoryBytes() / 2)
      << "front-coded pool should be well under half the hash-indexed "
         "dictionary";
}

TEST(CompactDictionaryTest, BucketBoundaries) {
  // Exactly one bucket, one entry past a restart, and a partial tail.
  for (size_t n : {CompactDictionary::kBucket, CompactDictionary::kBucket + 1,
                   3 * CompactDictionary::kBucket - 5}) {
    Dictionary dict;
    for (size_t i = 0; i < n; ++i) {
      dict.InternIri("http://x/" + std::to_string(i));
    }
    const CompactDictionary compact = CompactDictionary::Build(dict);
    ASSERT_EQ(compact.size(), n);
    for (TermId id = 0; id < n; ++id) {
      EXPECT_EQ(compact.term(id), dict.term(id)) << "n=" << n << " id=" << id;
      EXPECT_EQ(compact.Lookup(dict.term(id)), std::optional<TermId>(id));
    }
  }
}

}  // namespace
}  // namespace alex::rdf
