// Concurrency tests for the shared fault-tolerant endpoint stack: many
// client threads hammer ONE Endpoint -> FaultInjectedEndpoint ->
// ResilientEndpoint chain, the deployment shape of the link service. The
// invariants: per-probe accounting stays exact under contention, the
// breaker trips exactly once per closed->open transition no matter how many
// threads fail simultaneously, and the whole stack is free of data races —
// the "sanitize" label routes these through the TSan CI job. Fault profiles
// use zero latencies so nothing here wall-sleeps.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/retry.h"
#include "federation/circuit_breaker.h"
#include "federation/endpoint.h"
#include "federation/fault_injection.h"
#include "federation/resilient_endpoint.h"
#include "rdf/dataset.h"

namespace alex::fed {
namespace {

/// Thread-safe probe counter between the resilient wrapper and the fault
/// injector, so tests can count attempts that actually reached the inner
/// endpoint.
class AtomicCountingEndpoint final : public QueryEndpoint {
 public:
  explicit AtomicCountingEndpoint(const QueryEndpoint* inner)
      : inner_(inner) {}

  const std::string& name() const override { return inner_->name(); }
  bool CanAnswer(const sparql::TriplePatternAst& p) const override {
    return inner_->CanAnswer(p);
  }
  Status Probe(const PatternProbe& probe, const CallOptions& opts,
               const ProbeRowFn& fn) const override {
    probes_.fetch_add(1, std::memory_order_relaxed);
    return inner_->Probe(probe, opts, fn);
  }

  uint64_t probes() const { return probes_.load(std::memory_order_relaxed); }

 private:
  const QueryEndpoint* inner_;
  mutable std::atomic<uint64_t> probes_{0};
};

class ResilientConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_.AddLiteralTriple("http://r/acme", "http://r/label",
                           rdf::Term::Literal("Acme"));
    subject_ = rdf::Term::Iri("http://r/acme");
    probe_.subject = &subject_;
  }

  /// Runs `threads` x `probes_per_thread` probes against `ep` and returns
  /// {successes, failures}.
  std::pair<uint64_t, uint64_t> Hammer(const QueryEndpoint& ep, int threads,
                                       int probes_per_thread) {
    std::atomic<uint64_t> ok_count{0};
    std::atomic<uint64_t> fail_count{0};
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&] {
        for (int i = 0; i < probes_per_thread; ++i) {
          const Status st = ep.Probe(
              probe_, CallOptions(),
              [](const rdf::Term*, const rdf::Term*, const rdf::Term*) {
                return true;
              });
          if (st.ok()) {
            ok_count.fetch_add(1, std::memory_order_relaxed);
          } else {
            fail_count.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& t : workers) t.join();
    return {ok_count.load(), fail_count.load()};
  }

  rdf::Dataset data_{"remote"};
  rdf::Term subject_;
  PatternProbe probe_;
  SteadyClock clock_;
};

TEST_F(ResilientConcurrencyTest, HealthySharedStackCountsEveryProbeOnce) {
  constexpr int kThreads = 8;
  constexpr int kProbes = 50;
  Endpoint inner(&data_);
  AtomicCountingEndpoint counting(&inner);
  ResilientEndpoint resilient(&counting, RetryPolicy(), CircuitBreakerConfig(),
                              /*seed=*/7, &clock_);

  const auto [ok_count, fail_count] = Hammer(resilient, kThreads, kProbes);
  EXPECT_EQ(ok_count, static_cast<uint64_t>(kThreads * kProbes));
  EXPECT_EQ(fail_count, 0u);
  // No failures => no retries => exactly one inner attempt per probe.
  EXPECT_EQ(counting.probes(), static_cast<uint64_t>(kThreads * kProbes));
  EXPECT_EQ(resilient.breaker().state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(resilient.breaker().times_opened(), 0u);
}

TEST_F(ResilientConcurrencyTest, TransientErrorsUnderContentionStayAccounted) {
  constexpr int kThreads = 8;
  constexpr int kProbes = 40;
  FaultProfile profile;
  profile.name = "flaky_fast";
  profile.error_rate = 0.3;  // Zero latency: pure error injection.
  Endpoint inner(&data_);
  FaultInjectedEndpoint flaky(&inner, profile, /*seed=*/11, &clock_);
  AtomicCountingEndpoint counting(&flaky);

  RetryPolicy retry;
  retry.max_attempts = 4;
  retry.initial_backoff_seconds = 0.0;  // No wall sleeps in the ladder.
  retry.jitter_fraction = 0.0;
  // A breaker wide enough that the 30% error rate cannot trip it, so every
  // probe gets its full retry ladder.
  CircuitBreakerConfig breaker;
  breaker.failure_rate_threshold = 1.01;
  ResilientEndpoint resilient(&counting, retry, breaker, /*seed=*/13,
                              &clock_);

  const auto [ok_count, fail_count] = Hammer(resilient, kThreads, kProbes);
  EXPECT_EQ(ok_count + fail_count, static_cast<uint64_t>(kThreads * kProbes));
  // P(all 4 attempts fail) = 0.3^4 < 1%, so with 320 probes nearly all land.
  EXPECT_GT(ok_count, static_cast<uint64_t>(kThreads * kProbes * 8 / 10));
  // Retries imply strictly more inner attempts than probes, bounded by the
  // ladder.
  EXPECT_GE(counting.probes(), ok_count + fail_count);
  EXPECT_LE(counting.probes(),
            static_cast<uint64_t>(kThreads * kProbes * retry.max_attempts));
  EXPECT_EQ(resilient.breaker().times_opened(), 0u);
}

TEST_F(ResilientConcurrencyTest, DeadEndpointTripsBreakerExactlyOnce) {
  constexpr int kThreads = 8;
  constexpr int kProbes = 30;
  FaultProfile profile = FaultProfile::Down();
  profile.down_latency_seconds = 0.0;  // Fail fast, no wall sleeps.
  Endpoint inner(&data_);
  FaultInjectedEndpoint dead(&inner, profile, /*seed=*/17, &clock_);
  AtomicCountingEndpoint counting(&dead);

  RetryPolicy retry;
  retry.max_attempts = 2;
  retry.initial_backoff_seconds = 0.0;
  retry.jitter_fraction = 0.0;
  CircuitBreakerConfig breaker;
  breaker.window = 8;
  breaker.min_calls = 4;
  // Cooldown far beyond the test's wall time: once open the breaker must
  // never go half-open, so closed->open can only ever happen once.
  breaker.cooldown_seconds = 3600.0;
  ResilientEndpoint resilient(&counting, retry, breaker, /*seed=*/19,
                              &clock_);

  const auto [ok_count, fail_count] = Hammer(resilient, kThreads, kProbes);
  EXPECT_EQ(ok_count, 0u);
  EXPECT_EQ(fail_count, static_cast<uint64_t>(kThreads * kProbes));
  // Exactly one closed->open transition despite kThreads concurrent
  // failure recorders (RecordFailure attributes the trip to one outcome).
  EXPECT_EQ(resilient.breaker().times_opened(), 1u);
  EXPECT_EQ(resilient.breaker().state(), CircuitBreaker::State::kOpen);
  // The open breaker fast-fails locally: far fewer inner attempts than the
  // full retry ladder would have issued.
  EXPECT_LT(counting.probes(),
            static_cast<uint64_t>(kThreads * kProbes * retry.max_attempts));
}

}  // namespace
}  // namespace alex::fed
