// Property tests: any term the library can construct serializes to
// N-Triples and parses back to an identical term; whole stores round-trip
// losslessly through the text format.

#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "rdf/ntriples.h"

namespace alex::rdf {
namespace {

std::string RandomText(Rng* rng, bool nasty) {
  const std::string alphabet =
      nasty ? std::string("ab\"\\\n\t\r xyz09") : std::string("abcdxyz 09-_");
  std::string out;
  const size_t len = rng->UniformInt(20);
  for (size_t i = 0; i < len; ++i) {
    out += alphabet[rng->UniformInt(alphabet.size())];
  }
  return out;
}

Term RandomTerm(Rng* rng, bool allow_blank) {
  switch (rng->UniformInt(allow_blank ? 5 : 4)) {
    case 0:
      return Term::Iri("http://example.org/" +
                       std::to_string(rng->UniformInt(1000)));
    case 1:
      return Term::Literal(RandomText(rng, true));
    case 2:
      return Term::TypedLiteral(RandomText(rng, true),
                                "http://dt.example.org/t" +
                                    std::to_string(rng->UniformInt(5)));
    case 3:
      return Term::LangLiteral(RandomText(rng, true),
                               rng->Bernoulli(0.5) ? "en" : "de-DE");
    default:
      return Term::Blank("b" + std::to_string(rng->UniformInt(100)));
  }
}

class NtriplesRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NtriplesRoundTrip, SingleTermRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    const Term term = RandomTerm(&rng, /*allow_blank=*/true);
    const std::string serialized = term.ToNTriples();
    size_t pos = 0;
    auto parsed = ParseNTriplesTerm(serialized, &pos);
    ASSERT_TRUE(parsed.ok()) << serialized << ": " << parsed.status();
    EXPECT_EQ(*parsed, term) << serialized;
    EXPECT_EQ(pos, serialized.size());
  }
}

TEST_P(NtriplesRoundTrip, StoreRoundTrip) {
  Rng rng(GetParam() ^ 0x1234);
  Dictionary dict;
  TripleStore store;
  for (int i = 0; i < 150; ++i) {
    const TermId s = dict.Intern(
        Term::Iri("http://s.example.org/" +
                  std::to_string(rng.UniformInt(30))));
    const TermId p = dict.Intern(
        Term::Iri("http://p.example.org/" + std::to_string(rng.UniformInt(8))));
    const TermId o = dict.Intern(RandomTerm(&rng, /*allow_blank=*/false));
    store.Add(s, p, o);
  }

  std::ostringstream out;
  ASSERT_TRUE(WriteNTriples(store, dict, out).ok());
  Dictionary dict2;
  TripleStore store2;
  std::istringstream in(out.str());
  ASSERT_TRUE(ReadNTriples(in, &dict2, &store2).ok());
  ASSERT_EQ(store2.size(), store.size());
  store.ForEachMatch(TriplePattern{}, [&](const Triple& t) {
    auto s = dict2.Lookup(dict.term(t.subject));
    auto p = dict2.Lookup(dict.term(t.predicate));
    auto o = dict2.Lookup(dict.term(t.object));
    EXPECT_TRUE(s && p && o);
    if (s && p && o) EXPECT_TRUE(store2.Contains(Triple{*s, *p, *o}));
    return true;
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, NtriplesRoundTrip,
                         ::testing::Values(11, 222, 3333, 44444));

}  // namespace
}  // namespace alex::rdf
