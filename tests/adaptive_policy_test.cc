#include "rl/adaptive_policy.h"

#include <gtest/gtest.h>

#include "common/binary_io.h"
#include "core/policy.h"

namespace alex::rl {
namespace {

using core::FeatureKey;
using core::FeatureSet;
using core::FeatureValue;
using core::PairKey;
using core::StateAction;

FeatureSet Actions(std::initializer_list<FeatureKey> keys) {
  FeatureSet set;
  for (FeatureKey k : keys) {
    FeatureValue v;
    v.key = k;
    set.push_back(v);
  }
  return set;
}

TEST(AdaptiveFeaturePolicy, TracksPayoffStatistics) {
  AdaptiveFeaturePolicy policy(0.1, 0.25, 7);
  EXPECT_DOUBLE_EQ(policy.SuccessRate(5), 0.5);  // Laplace prior.

  policy.RecordReturn(StateAction{1, 5}, 1.0);
  policy.RecordReturn(StateAction{2, 5}, 1.0);
  policy.RecordReturn(StateAction{3, 5}, -1.0);
  // (2 positive + 1) / (3 trials + 2).
  EXPECT_DOUBLE_EQ(policy.SuccessRate(5), 3.0 / 5.0);
  EXPECT_EQ(policy.num_tracked_features(), 1u);

  policy.RecordReturn(StateAction{1, 9}, -1.0);
  EXPECT_DOUBLE_EQ(policy.SuccessRate(9), 1.0 / 3.0);
  EXPECT_EQ(policy.num_tracked_features(), 2u);
}

TEST(AdaptiveFeaturePolicy, GreedyBranchPrefersPayingFeatures) {
  // ε = 0: always greedy. Neither action has a state-local Q at state 42,
  // and neither has a global Q that dominates — feature 5 has a history of
  // positive returns at other states, feature 9 of negative ones.
  AdaptiveFeaturePolicy policy(0.0, 0.25, 7);
  for (PairKey s = 1; s <= 4; ++s) {
    policy.RecordReturn(StateAction{s, 5}, 1.0);
    policy.RecordReturn(StateAction{s, 9}, -1.0);
  }
  auto chosen = policy.ChooseAction(42, Actions({9, 5}));
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(*chosen, 5u);
}

TEST(AdaptiveFeaturePolicy, PayoffBonusBreaksColdStart) {
  // Two never-globally-tried features at a fresh state: the payoff bonus is
  // zero for both (success rate = ½), so the canonical tie-break picks the
  // smallest key — deterministically, unlike the base policy's random draw.
  AdaptiveFeaturePolicy policy(0.0, 0.25, 7);
  for (int i = 0; i < 16; ++i) {
    auto chosen = policy.ChooseAction(42, Actions({9, 5, 7}));
    ASSERT_TRUE(chosen.has_value());
    EXPECT_EQ(*chosen, 5u);
  }
}

TEST(AdaptiveFeaturePolicy, StateLocalQOverridesPayoff) {
  // Feature 9 is bad globally but good at this particular state; the
  // state-local estimate must win (the paper's per-state Q is the primary
  // signal, payoff only shades the prior).
  AdaptiveFeaturePolicy policy(0.0, 0.25, 7);
  for (PairKey s = 1; s <= 4; ++s) {
    policy.RecordReturn(StateAction{s, 9}, -1.0);
    policy.RecordReturn(StateAction{s, 5}, 1.0);
  }
  policy.RecordReturn(StateAction{42, 9}, 1.0);
  policy.RecordReturn(StateAction{42, 5}, -1.0);
  auto chosen = policy.ChooseAction(42, Actions({5, 9}));
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(*chosen, 9u);
}

TEST(AdaptiveFeaturePolicy, ExplorationKeepsEveryActionReachable) {
  // ε = 1: always exploring. Even a feature with a long negative history
  // must keep a positive draw probability (GLIE needs π(s,a) > 0).
  AdaptiveFeaturePolicy policy(1.0, 0.25, 7);
  for (PairKey s = 1; s <= 50; ++s) {
    policy.RecordReturn(StateAction{s, 9}, -1.0);
  }
  bool seen_bad = false;
  for (int i = 0; i < 400 && !seen_bad; ++i) {
    auto chosen = policy.ChooseAction(1000 + i, Actions({5, 9}));
    ASSERT_TRUE(chosen.has_value());
    seen_bad = (*chosen == 9u);
  }
  EXPECT_TRUE(seen_bad);
}

TEST(AdaptiveFeaturePolicy, ExplorationFavorsPayingFeatures) {
  AdaptiveFeaturePolicy policy(1.0, 0.25, 7);
  for (PairKey s = 1; s <= 50; ++s) {
    policy.RecordReturn(StateAction{s, 5}, 1.0);
    policy.RecordReturn(StateAction{s, 9}, -1.0);
  }
  size_t picked_good = 0;
  const int kDraws = 600;
  for (int i = 0; i < kDraws; ++i) {
    auto chosen = policy.ChooseAction(1000 + i, Actions({5, 9}));
    ASSERT_TRUE(chosen.has_value());
    if (*chosen == 5u) ++picked_good;
  }
  // Weights are floor+rate ≈ 1.23 vs 0.27: expect roughly 82% good draws;
  // anything clearly above uniform proves the weighting is live.
  EXPECT_GT(picked_good, kDraws * 6 / 10);
}

TEST(AdaptiveFeaturePolicy, SaveLoadRoundTripsExactly) {
  AdaptiveFeaturePolicy policy(0.3, 0.4, 7);
  for (PairKey s = 1; s <= 10; ++s) {
    policy.RecordReturn(StateAction{s, s % 3}, s % 2 == 0 ? 1.0 : -1.0);
  }
  policy.Improve({1, 2, 3, 4, 5});
  // Burn a few RNG draws so the stream position is mid-sequence.
  (void)policy.ChooseAction(1, Actions({0, 1, 2}));

  BinaryWriter w;
  policy.SaveState(&w);

  AdaptiveFeaturePolicy restored(0.9, 0.0, 1234);
  BinaryReader r(w.buffer());
  ASSERT_TRUE(restored.LoadState(&r).ok());
  EXPECT_TRUE(r.AtEnd());

  EXPECT_DOUBLE_EQ(restored.epsilon(), policy.epsilon());
  EXPECT_EQ(restored.num_states(), policy.num_states());
  EXPECT_EQ(restored.num_tracked_features(), policy.num_tracked_features());
  for (FeatureKey f = 0; f < 3; ++f) {
    EXPECT_DOUBLE_EQ(restored.SuccessRate(f), policy.SuccessRate(f));
  }
  // The restored RNG stream continues exactly where the saved one was.
  for (int i = 0; i < 32; ++i) {
    auto a = policy.ChooseAction(2, Actions({0, 1, 2}));
    auto b = restored.ChooseAction(2, Actions({0, 1, 2}));
    ASSERT_TRUE(a.has_value() && b.has_value());
    EXPECT_EQ(*a, *b);
  }
}

TEST(AdaptiveFeaturePolicy, LoadIsAllOrNothingOnTruncation) {
  AdaptiveFeaturePolicy policy(0.3, 0.4, 7);
  policy.RecordReturn(StateAction{1, 5}, 1.0);
  BinaryWriter w;
  policy.SaveState(&w);
  const std::string bytes = std::string(w.buffer());

  AdaptiveFeaturePolicy victim(0.7, 0.2, 9);
  victim.RecordReturn(StateAction{2, 9}, -1.0);
  BinaryReader r(std::string_view(bytes).substr(0, bytes.size() - 4));
  ASSERT_FALSE(victim.LoadState(&r).ok());
  // Untouched: its own payoff entry is still the only one.
  EXPECT_DOUBLE_EQ(victim.epsilon(), 0.7);
  EXPECT_EQ(victim.num_tracked_features(), 1u);
  EXPECT_DOUBLE_EQ(victim.SuccessRate(9), 1.0 / 3.0);
}

TEST(AdaptiveFeaturePolicy, RegistryCreatesByTag) {
  RegisterAdaptiveFeaturePolicy();
  core::AlexConfig config;
  config.epsilon = 0.25;
  config.adaptive_payoff_weight = 0.5;
  auto policy = core::PolicyRegistry::Global().Create(
      kAdaptiveFeaturePolicyTag, config, 7);
  ASSERT_TRUE(policy.ok()) << policy.status();
  EXPECT_EQ((*policy)->type_tag(), kAdaptiveFeaturePolicyTag);
  EXPECT_DOUBLE_EQ((*policy)->epsilon(), 0.25);
}

}  // namespace
}  // namespace alex::rl
