#include "rdf/term.h"

#include <unordered_set>

#include <gtest/gtest.h>

namespace alex::rdf {
namespace {

TEST(TermTest, Factories) {
  Term iri = Term::Iri("http://x/a");
  EXPECT_TRUE(iri.is_iri());
  EXPECT_FALSE(iri.is_literal());
  EXPECT_EQ(iri.value, "http://x/a");

  Term lit = Term::Literal("hello");
  EXPECT_TRUE(lit.is_literal());
  EXPECT_TRUE(lit.datatype.empty());
  EXPECT_TRUE(lit.language.empty());

  Term typed = Term::TypedLiteral("3", std::string(kXsdInteger));
  EXPECT_TRUE(typed.is_literal());
  EXPECT_EQ(typed.datatype, kXsdInteger);

  Term lang = Term::LangLiteral("bonjour", "fr");
  EXPECT_EQ(lang.language, "fr");

  Term blank = Term::Blank("b0");
  EXPECT_TRUE(blank.is_blank());
}

TEST(TermTest, ToNTriplesFormats) {
  EXPECT_EQ(Term::Iri("http://x/a").ToNTriples(), "<http://x/a>");
  EXPECT_EQ(Term::Literal("hi").ToNTriples(), "\"hi\"");
  EXPECT_EQ(Term::TypedLiteral("3", "http://dt").ToNTriples(),
            "\"3\"^^<http://dt>");
  EXPECT_EQ(Term::LangLiteral("hi", "en").ToNTriples(), "\"hi\"@en");
  EXPECT_EQ(Term::Blank("b0").ToNTriples(), "_:b0");
}

TEST(TermTest, EscapingInLiterals) {
  EXPECT_EQ(Term::Literal("a\"b").ToNTriples(), "\"a\\\"b\"");
  EXPECT_EQ(Term::Literal("a\\b").ToNTriples(), "\"a\\\\b\"");
  EXPECT_EQ(Term::Literal("a\nb").ToNTriples(), "\"a\\nb\"");
  EXPECT_EQ(Term::Literal("a\tb").ToNTriples(), "\"a\\tb\"");
  EXPECT_EQ(Term::Literal("a\rb").ToNTriples(), "\"a\\rb\"");
}

TEST(TermTest, EqualityIsComponentWise) {
  EXPECT_EQ(Term::Iri("http://x"), Term::Iri("http://x"));
  EXPECT_NE(Term::Iri("http://x"), Term::Literal("http://x"));
  EXPECT_NE(Term::Literal("v"), Term::TypedLiteral("v", "http://dt"));
  EXPECT_NE(Term::LangLiteral("v", "en"), Term::LangLiteral("v", "fr"));
}

TEST(TermTest, OrderingIsTotal) {
  Term a = Term::Iri("a");
  Term b = Term::Iri("b");
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
  EXPECT_FALSE(a < a);
  // Kind dominates: IRIs order before literals.
  EXPECT_TRUE(Term::Iri("z") < Term::Literal("a"));
}

TEST(TermTest, HashDistinguishesComponents) {
  TermHash h;
  EXPECT_EQ(h(Term::Iri("x")), h(Term::Iri("x")));
  EXPECT_NE(h(Term::Iri("x")), h(Term::Literal("x")));
  EXPECT_NE(h(Term::Literal("v")), h(Term::TypedLiteral("v", "dt")));
  EXPECT_NE(h(Term::LangLiteral("v", "en")), h(Term::LangLiteral("v", "fr")));
}

TEST(TermTest, HashWorksInUnorderedSet) {
  std::unordered_set<Term, TermHash> set;
  set.insert(Term::Iri("a"));
  set.insert(Term::Iri("a"));
  set.insert(Term::Literal("a"));
  EXPECT_EQ(set.size(), 2u);
}

TEST(TermTest, EscapeNTriplesString) {
  EXPECT_EQ(EscapeNTriplesString("plain"), "plain");
  EXPECT_EQ(EscapeNTriplesString("q\"q"), "q\\\"q");
  EXPECT_EQ(EscapeNTriplesString(""), "");
}

}  // namespace
}  // namespace alex::rdf
