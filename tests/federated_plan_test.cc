// Tests for the compiled federated query path: CompiledQuery compilation
// (validation parity with the legacy string path), the PlanCache memo, and
// — the load-bearing invariant — bit-identical results between the compiled
// and legacy execution modes across query shapes, including a randomized
// fuzz sweep over generated datasets and query texts.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "federation/compiled_query.h"
#include "federation/endpoint.h"
#include "federation/federated_engine.h"
#include "obs/metrics.h"
#include "rdf/dataset.h"
#include "sparql/parser.h"

namespace alex::fed {
namespace {

using rdf::Term;

/// Canonical digest of a federated result: variables, every row's values
/// (N-Triples) and provenance, and the degradation detail. Two results with
/// equal digests are byte-identical as far as callers can observe.
std::string Digest(const Result<FederatedResult>& r) {
  if (!r.ok()) {
    return "error:" + std::to_string(static_cast<int>(r.status().code())) +
           ":" + std::string(r.status().message());
  }
  std::string d = "vars:";
  for (const std::string& v : r->variables) d += v + ",";
  d += r->degraded ? "|degraded|" : "|ok|";
  for (const EndpointError& e : r->errors) {
    d += e.endpoint + ":" + std::to_string(static_cast<int>(e.code)) + ":" +
         std::to_string(e.failed_probes) + ";";
  }
  for (const ProvenancedRow& row : r->rows) {
    d += "row:";
    for (const Term& t : row.values) d += t.ToNTriples() + "\x1e";
    for (const SameAsLink& l : row.links_used) {
      d += l.left_iri + "->" + l.right_iri + "\x1f";
    }
  }
  return d;
}

std::string kSpanning() {
  return "SELECT ?p ?o WHERE { <http://l/acme> ?p ?o . }";
}

class FederatedPlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    left_.AddIriTriple("http://l/alice", "http://l/worksFor", "http://l/acme");
    left_.AddIriTriple("http://l/bob", "http://l/worksFor", "http://l/acme");
    left_.AddLiteralTriple("http://l/acme", "http://l/name",
                           Term::Literal("Acme"));
    left_.AddLiteralTriple("http://l/alice", "http://l/age",
                           Term::TypedLiteral(
                               "34", "http://www.w3.org/2001/XMLSchema#integer"));
    right_.AddLiteralTriple("http://r/acme-corp", "http://r/hq",
                            Term::Literal("Belcaster"));
    right_.AddLiteralTriple("http://r/acme-corp", "http://r/label",
                            Term::Literal("Acme Corporation"));
    right_.AddLiteralTriple("http://r/acme-corp", "http://r/label",
                            Term::Literal("ACME"));
    links_.Add("http://l/acme", "http://r/acme-corp");
    left_ep_ = std::make_unique<Endpoint>(&left_);
    right_ep_ = std::make_unique<Endpoint>(&right_);
    engine_ = std::make_unique<FederatedEngine>(left_ep_.get(),
                                                right_ep_.get(), &links_);
  }

  /// Executes `query` in both modes and expects identical digests; returns
  /// the compiled-mode result.
  Result<FederatedResult> ExpectModesAgree(const std::string& query) {
    engine_->set_execution_mode(FederatedEngine::ExecutionMode::kCompiled);
    Result<FederatedResult> compiled = engine_->ExecuteText(query);
    engine_->set_execution_mode(
        FederatedEngine::ExecutionMode::kLegacyStrings);
    Result<FederatedResult> legacy = engine_->ExecuteText(query);
    engine_->set_execution_mode(FederatedEngine::ExecutionMode::kCompiled);
    EXPECT_EQ(Digest(compiled), Digest(legacy)) << query;
    return compiled;
  }

  rdf::Dataset left_{"hr"};
  rdf::Dataset right_{"companies"};
  LinkIndex links_;
  std::unique_ptr<Endpoint> left_ep_;
  std::unique_ptr<Endpoint> right_ep_;
  std::unique_ptr<FederatedEngine> engine_;
};

TEST_F(FederatedPlanTest, CompileRejectsWhatLegacyRejects) {
  // Same InvalidArgument messages as the legacy path, so callers switching
  // modes see no behavior change even on bad input.
  auto unsupported = CompiledQuery::CompileText(
      "SELECT ?x WHERE { ?x <http://l/p> ?y . "
      "OPTIONAL { ?x <http://l/q> ?z . } }");
  ASSERT_FALSE(unsupported.ok());
  EXPECT_EQ(unsupported.status().message(),
            "OPTIONAL/UNION are not supported in federated queries");

  auto unknown = CompiledQuery::CompileText(
      "SELECT ?missing WHERE { ?x <http://l/p> ?y . }");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().message(),
            "projected variable ?missing not mentioned in WHERE");
}

TEST_F(FederatedPlanTest, CompileResolvesSlotsAndFilters) {
  auto plan = CompiledQuery::CompileText(
      "SELECT ?v WHERE { <http://l/alice> <http://l/age> ?v . "
      "FILTER(?v > \"30\") }");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->num_slots(), 1u);
  ASSERT_EQ(plan->patterns().size(), 1u);
  const CompiledQuery::Pattern& p = plan->patterns()[0];
  EXPECT_FALSE(p.comp[0].is_variable());
  EXPECT_FALSE(p.comp[1].is_variable());
  ASSERT_TRUE(p.comp[2].is_variable());
  EXPECT_EQ(plan->filters_for_slot(p.comp[2].slot).size(), 1u);
  ASSERT_EQ(plan->projection_slots().size(), 1u);
  EXPECT_EQ(plan->projection_slots()[0], p.comp[2].slot);
}

TEST_F(FederatedPlanTest, InvalidOrderByFailsAfterExecutionInBothModes) {
  // Legacy reports a bad ORDER BY variable only after enumeration, so it is
  // deliberately not a compile error.
  const std::string query =
      "SELECT ?v WHERE { <http://l/acme> <http://l/name> ?v . } "
      "ORDER BY ?nope";
  auto plan = CompiledQuery::CompileText(query);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(plan->has_order_by());
  EXPECT_FALSE(plan->order_by_valid());
  auto r = ExpectModesAgree(query);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().message(), "ORDER BY variable ?nope not in the result");
}

TEST_F(FederatedPlanTest, CuratedQueriesMatchLegacyBitForBit) {
  const std::vector<std::string> queries = {
      // Spanning query: needs the sameAs link for the right-side rows.
      "SELECT ?p ?o WHERE { <http://l/acme> ?p ?o . }",
      // Join through a bound variable.
      "SELECT ?who ?label WHERE { ?who <http://l/worksFor> ?org . "
      "?org <http://r/label> ?label . }",
      // DISTINCT collapsing the two employees.
      "SELECT DISTINCT ?label WHERE { ?who <http://l/worksFor> ?org . "
      "?org <http://r/label> ?label . }",
      // FILTER on a join variable.
      "SELECT ?who ?label WHERE { ?who <http://l/worksFor> ?org . "
      "?org <http://r/label> ?label . FILTER(?label = \"ACME\") }",
      // ORDER BY with LIMIT (limit applies after the sort).
      "SELECT ?o WHERE { <http://l/acme> ?p ?o . } ORDER BY ?o LIMIT 2",
      // LIMIT alone (stops enumeration early).
      "SELECT ?p ?o WHERE { <http://l/acme> ?p ?o . } LIMIT 1",
      // Repeated variable within one pattern.
      "SELECT ?x WHERE { ?x <http://l/worksFor> ?x . }",
      // Empty result.
      "SELECT ?v WHERE { <http://l/nobody> <http://l/name> ?v . }",
  };
  for (const std::string& q : queries) {
    auto r = ExpectModesAgree(q);
    EXPECT_TRUE(r.ok()) << q << ": " << r.status();
  }
}

TEST_F(FederatedPlanTest, FuzzRandomQueriesMatchLegacy) {
  // Randomized equivalence sweep: generated datasets, generated query
  // texts (joins, filters, DISTINCT, LIMIT), both execution modes. Any
  // digest mismatch is a real divergence between the paths.
  Rng rng(20260806);
  rdf::Dataset left("fuzz-left");
  rdf::Dataset right("fuzz-right");
  LinkIndex links;
  const int kEntities = 6, kPreds = 3, kValues = 4;
  for (int e = 0; e < kEntities; ++e) {
    const std::string l = "http://l/e" + std::to_string(e);
    const std::string r = "http://r/e" + std::to_string(e);
    for (int p = 0; p < kPreds; ++p) {
      if (rng.UniformInt(3) == 0) continue;  // Sparse.
      left.AddLiteralTriple(
          l, "http://l/p" + std::to_string(p),
          Term::Literal("v" + std::to_string(rng.UniformInt(kValues))));
      right.AddLiteralTriple(
          r, "http://r/p" + std::to_string(p),
          Term::Literal("w" + std::to_string(rng.UniformInt(kValues))));
    }
    left.AddIriTriple(l, "http://l/knows",
                      "http://l/e" + std::to_string(rng.UniformInt(kEntities)));
    if (rng.UniformInt(2) == 0) links.Add(l, r);
  }
  Endpoint left_ep(&left);
  Endpoint right_ep(&right);
  FederatedEngine engine(&left_ep, &right_ep, &links);

  auto random_entity = [&](const char* side) {
    return "<http://" + std::string(side) + "/e" +
           std::to_string(rng.UniformInt(kEntities)) + ">";
  };
  auto random_pred = [&](const char* side) {
    return "<http://" + std::string(side) + "/p" +
           std::to_string(rng.UniformInt(kPreds)) + ">";
  };
  const std::vector<std::string> vars = {"?a", "?b", "?c"};

  for (int iter = 0; iter < 60; ++iter) {
    const int num_patterns = 1 + static_cast<int>(rng.UniformInt(2));
    std::string where;
    std::vector<std::string> used;
    auto use_var = [&]() {
      const std::string& v = vars[rng.UniformInt(vars.size())];
      if (std::find(used.begin(), used.end(), v.substr(1)) == used.end()) {
        used.push_back(v.substr(1));
      }
      return v;
    };
    for (int pi = 0; pi < num_patterns; ++pi) {
      const char* side = rng.UniformInt(2) == 0 ? "l" : "r";
      const std::string s =
          rng.UniformInt(2) == 0 ? random_entity(side) : use_var();
      const std::string p =
          rng.UniformInt(4) == 0 ? use_var() : random_pred(side);
      const std::string o = rng.UniformInt(2) == 0 ? use_var() : "?o" ;
      if (o == "?o" &&
          std::find(used.begin(), used.end(), "o") == used.end()) {
        used.push_back("o");
      }
      where += s + " " + p + " " + o + " . ";
    }
    std::string query = "SELECT";
    for (const std::string& v : used) query += " ?" + v;
    if (rng.UniformInt(3) == 0) query.insert(6, " DISTINCT");
    query += " WHERE { " + where;
    if (rng.UniformInt(4) == 0 && !used.empty()) {
      query += "FILTER(?" + used[rng.UniformInt(used.size())] +
               " > \"v1\") ";
    }
    query += "}";
    if (rng.UniformInt(4) == 0) {
      query += " LIMIT " + std::to_string(1 + rng.UniformInt(5));
    }

    engine.set_execution_mode(FederatedEngine::ExecutionMode::kCompiled);
    auto compiled = engine.ExecuteText(query);
    engine.set_execution_mode(FederatedEngine::ExecutionMode::kLegacyStrings);
    auto legacy = engine.ExecuteText(query);
    EXPECT_EQ(Digest(compiled), Digest(legacy)) << "iter " << iter << ": "
                                                << query;
  }
}

TEST_F(FederatedPlanTest, PlanCacheCompilesEachTextOnce) {
  PlanCache cache;
  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::Global().Snapshot();
  auto first = cache.GetOrCompile(kSpanning());
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = cache.GetOrCompile(kSpanning());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());  // Same shared plan, not a copy.
  EXPECT_EQ(cache.size(), 1u);
  const obs::MetricsSnapshot delta =
      obs::MetricsRegistry::Global().Snapshot().DeltaSince(before);
  EXPECT_EQ(delta.counters.at("fed.plan_cache_hits"), 1u);
  EXPECT_EQ(delta.histograms.at("fed.plan_compile_seconds").count, 1u);

  // Parse errors are surfaced and never cached.
  auto bad = cache.GetOrCompile("SELECT nonsense");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(FederatedPlanTest, EngineExecuteTextHitsThePlanCache) {
  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::Global().Snapshot();
  for (int i = 0; i < 5; ++i) {
    auto r = engine_->ExecuteText(kSpanning());
    ASSERT_TRUE(r.ok()) << r.status();
  }
  const obs::MetricsSnapshot delta =
      obs::MetricsRegistry::Global().Snapshot().DeltaSince(before);
  EXPECT_EQ(delta.counters.at("fed.plan_cache_hits"), 4u);
}

TEST_F(FederatedPlanTest, OnePlanRunsAgainstManyEngines) {
  auto plan = CompiledQuery::CompileText(kSpanning());
  ASSERT_TRUE(plan.ok()) << plan.status();

  // Second federation with different right-side data behind the same link.
  rdf::Dataset other_right("companies2");
  other_right.AddLiteralTriple("http://r/acme-corp", "http://r/hq",
                               Term::Literal("Springfield"));
  Endpoint other_right_ep(&other_right);
  FederatedEngine other(left_ep_.get(), &other_right_ep, &links_);

  auto r1 = engine_->Execute(*plan);
  auto r2 = other.Execute(*plan);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->NumRows(), 4u);  // 1 left fact + 3 right facts via the link.
  EXPECT_NE(Digest(r1), Digest(r2));  // Plans carry no endpoint state.
  // The plan result matches parsing-and-executing on each engine.
  EXPECT_EQ(Digest(r1), Digest(engine_->ExecuteText(kSpanning())));
  EXPECT_EQ(Digest(r2), Digest(other.ExecuteText(kSpanning())));
}

}  // namespace
}  // namespace alex::fed
