#include "feedback/oracle.h"

#include <gtest/gtest.h>

namespace alex::feedback {
namespace {

TEST(PairKeyTest, PackUnpackRoundTrip) {
  const PairKey key = PackPair(123456, 789012);
  EXPECT_EQ(PairLeft(key), 123456u);
  EXPECT_EQ(PairRight(key), 789012u);
  EXPECT_EQ(PairLeft(PackPair(0, 0)), 0u);
  EXPECT_EQ(PairRight(PackPair(UINT32_MAX - 1, UINT32_MAX - 1)),
            UINT32_MAX - 1);
}

TEST(GroundTruthTest, AddContainsSize) {
  GroundTruth truth;
  EXPECT_TRUE(truth.empty());
  truth.Add(1, 2);
  truth.Add(1, 2);  // Duplicate.
  truth.Add(3, 4);
  EXPECT_EQ(truth.size(), 2u);
  EXPECT_TRUE(truth.Contains(1, 2));
  EXPECT_TRUE(truth.Contains(PackPair(3, 4)));
  EXPECT_FALSE(truth.Contains(2, 1));
  EXPECT_EQ(truth.AsVector().size(), 2u);
}

TEST(OracleTest, PerfectOracleJudgesAgainstTruth) {
  GroundTruth truth;
  truth.Add(1, 2);
  Oracle oracle(&truth, 0.0, 42);
  EXPECT_TRUE(oracle.Judge(1, 2).positive);
  EXPECT_FALSE(oracle.Judge(1, 3).positive);
  EXPECT_FALSE(oracle.Judge(2, 1).positive);
}

TEST(OracleTest, FeedbackItemCarriesPair) {
  GroundTruth truth;
  truth.Add(5, 6);
  Oracle oracle(&truth, 0.0, 1);
  FeedbackItem item = oracle.Judge(5, 6);
  EXPECT_EQ(item.left, 5u);
  EXPECT_EQ(item.right, 6u);
  EXPECT_EQ(item.key(), PackPair(5, 6));
}

TEST(OracleTest, ErrorRateFlipsApproximatelyThatFraction) {
  GroundTruth truth;
  truth.Add(1, 1);
  Oracle oracle(&truth, 0.1, 7);
  int wrong = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (!oracle.Judge(1, 1).positive) ++wrong;  // Should be positive.
  }
  EXPECT_NEAR(static_cast<double>(wrong) / n, 0.1, 0.02);
}

TEST(OracleTest, FullErrorRateAlwaysFlips) {
  GroundTruth truth;
  truth.Add(1, 1);
  Oracle oracle(&truth, 1.0, 7);
  EXPECT_FALSE(oracle.Judge(1, 1).positive);
  EXPECT_TRUE(oracle.Judge(1, 2).positive);
}

TEST(OracleTest, SampleAndJudgeEmptyReturnsNullopt) {
  GroundTruth truth;
  Oracle oracle(&truth, 0.0, 3);
  EXPECT_FALSE(oracle.SampleAndJudge({}).has_value());
}

TEST(OracleTest, SampleAndJudgeDrawsFromCandidates) {
  GroundTruth truth;
  truth.Add(1, 1);
  Oracle oracle(&truth, 0.0, 11);
  std::vector<PairKey> candidates = {PackPair(1, 1), PackPair(2, 2)};
  int positives = 0;
  for (int i = 0; i < 1000; ++i) {
    auto item = oracle.SampleAndJudge(candidates);
    ASSERT_TRUE(item.has_value());
    const PairKey key = item->key();
    EXPECT_TRUE(key == candidates[0] || key == candidates[1]);
    if (item->positive) ++positives;
  }
  EXPECT_NEAR(positives, 500, 80);  // Uniform sampling over two candidates.
}

TEST(OracleTest, DeterministicForSameSeed) {
  GroundTruth truth;
  truth.Add(1, 1);
  Oracle a(&truth, 0.5, 99);
  Oracle b(&truth, 0.5, 99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Judge(1, 1).positive, b.Judge(1, 1).positive);
  }
}

}  // namespace
}  // namespace alex::feedback
