#include "paris/link_spec.h"

#include <gtest/gtest.h>

namespace alex::paris {
namespace {

using rdf::Term;

TEST(LinkSpecParseTest, FullSpec) {
  auto spec = ParseLinkSpec(
      "# people linking rules\n"
      "compare http://l/name http://r/label using jaro_winkler weight 2\n"
      "compare http://l/birth http://r/dob using date\n"
      "\n"
      "aggregate average\n"
      "threshold 0.9\n");
  ASSERT_TRUE(spec.ok()) << spec.status();
  ASSERT_EQ(spec->comparisons.size(), 2u);
  EXPECT_EQ(spec->comparisons[0].left_predicate, "http://l/name");
  EXPECT_EQ(spec->comparisons[0].metric, Metric::kJaroWinkler);
  EXPECT_DOUBLE_EQ(spec->comparisons[0].weight, 2.0);
  EXPECT_EQ(spec->comparisons[1].metric, Metric::kDateProximity);
  EXPECT_DOUBLE_EQ(spec->comparisons[1].weight, 1.0);
  EXPECT_EQ(spec->aggregation, Aggregation::kAverage);
  EXPECT_DOUBLE_EQ(spec->threshold, 0.9);
}

TEST(LinkSpecParseTest, AllMetricsAndAggregations) {
  for (const char* metric : {"exact", "levenshtein", "jaro_winkler",
                             "token_jaccard", "trigram_dice", "numeric",
                             "date"}) {
    auto spec = ParseLinkSpec(std::string("compare http://a http://b using ") +
                              metric + "\n");
    EXPECT_TRUE(spec.ok()) << metric;
  }
  for (const char* agg : {"average", "min", "max"}) {
    auto spec = ParseLinkSpec(
        std::string("compare http://a http://b using exact\naggregate ") +
        agg + "\n");
    EXPECT_TRUE(spec.ok()) << agg;
  }
}

TEST(LinkSpecParseTest, Errors) {
  EXPECT_FALSE(ParseLinkSpec("").ok());  // No comparisons.
  EXPECT_FALSE(ParseLinkSpec("compare a b using nope\n").ok());
  EXPECT_FALSE(ParseLinkSpec("compare a b\n").ok());
  EXPECT_FALSE(ParseLinkSpec("compare a b using exact trailing\n").ok());
  EXPECT_FALSE(ParseLinkSpec("compare a b using exact weight -1\n").ok());
  EXPECT_FALSE(
      ParseLinkSpec("compare a b using exact\naggregate median\n").ok());
  EXPECT_FALSE(
      ParseLinkSpec("compare a b using exact\nthreshold 2.0\n").ok());
  EXPECT_FALSE(ParseLinkSpec("frobnicate\n").ok());
  auto err = ParseLinkSpec("compare a b using exact\nbogus\n");
  EXPECT_NE(err.status().message().find("line 2"), std::string::npos);
}

TEST(LinkSpecParseTest, CorruptNumbersAreParseErrors) {
  // strtod with a discarded end pointer used to read "0.9x" as 0.9 and
  // "abc" as 0.0 — a typo'd spec silently became a different spec. Each of
  // these must now fail, naming the line and the offending token.
  for (const char* bad : {"0.9x", "abc", "1e", ".", "nan", "inf", "1e999",
                          "--1"}) {
    auto spec = ParseLinkSpec(std::string("compare a b using exact\n") +
                              "threshold " + bad + "\n");
    ASSERT_FALSE(spec.ok()) << "threshold '" << bad << "' must not parse";
    EXPECT_NE(spec.status().message().find("line 2"), std::string::npos)
        << spec.status();
    EXPECT_NE(spec.status().message().find(bad), std::string::npos)
        << spec.status();
  }
  auto weight = ParseLinkSpec("compare a b using exact weight 2,5\n");
  ASSERT_FALSE(weight.ok());
  EXPECT_NE(weight.status().message().find("weight"), std::string::npos);
  EXPECT_NE(weight.status().message().find("2,5"), std::string::npos);
  // Tokens after the weight are trailing garbage, not silently ignored.
  EXPECT_FALSE(
      ParseLinkSpec("compare a b using exact weight 2 extra\n").ok());
}

class LinkSpecRunTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Add(&left_, "http://l", 0, "Alice Arden", "1980-02-03");
    Add(&left_, "http://l", 1, "Bob Belcar", "1975-07-12");
    Add(&left_, "http://l", 2, "Carol Corva", "1990-11-30");
    Add(&right_, "http://r", 0, "Alice Arden", "1980-02-03");
    // Typo'd name, same birth date.
    Add(&right_, "http://r", 1, "Bob Belcra", "1975-07-12");
    // Unrelated person.
    Add(&right_, "http://r", 9, "Zed Zorva", "1966-06-06");
    left_.BuildEntityIndex();
    right_.BuildEntityIndex();
  }

  void Add(rdf::Dataset* ds, const std::string& prefix, int id,
           const std::string& name, const std::string& birth) {
    const std::string iri = prefix + "/p" + std::to_string(id);
    ds->AddLiteralTriple(iri, prefix + "/name", Term::Literal(name));
    ds->AddLiteralTriple(
        iri, prefix + "/birth",
        Term::TypedLiteral(birth, std::string(rdf::kXsdDate)));
  }

  rdf::EntityId L(int id) {
    return *left_.FindEntityByIri("http://l/p" + std::to_string(id));
  }
  rdf::EntityId R(int id) {
    return *right_.FindEntityByIri("http://r/p" + std::to_string(id));
  }

  bool HasLink(const std::vector<ScoredLink>& links, rdf::EntityId l,
               rdf::EntityId r) {
    for (const ScoredLink& link : links) {
      if (link.left == l && link.right == r) return true;
    }
    return false;
  }

  rdf::Dataset left_{"l"};
  rdf::Dataset right_{"r"};
};

TEST_F(LinkSpecRunTest, ExactNameRule) {
  LinkSpec spec = *ParseLinkSpec(
      "compare http://l/name http://r/name using exact\nthreshold 1.0\n");
  auto links = RunLinkSpec(left_, right_, spec);
  ASSERT_EQ(links.size(), 1u);
  EXPECT_TRUE(HasLink(links, L(0), R(0)));
}

TEST_F(LinkSpecRunTest, FuzzyRuleTolleratesTypos) {
  LinkSpec spec = *ParseLinkSpec(
      "compare http://l/name http://r/name using jaro_winkler weight 1\n"
      "compare http://l/birth http://r/birth using date weight 2\n"
      "aggregate average\nthreshold 0.9\n");
  auto links = RunLinkSpec(left_, right_, spec);
  EXPECT_TRUE(HasLink(links, L(0), R(0)));
  EXPECT_TRUE(HasLink(links, L(1), R(1)));  // Typo'd Bob still matches.
  EXPECT_FALSE(HasLink(links, L(2), R(9)));
}

TEST_F(LinkSpecRunTest, MinAggregationDemandsAllRules) {
  LinkSpec spec = *ParseLinkSpec(
      "compare http://l/name http://r/name using exact\n"
      "compare http://l/birth http://r/birth using date\n"
      "aggregate min\nthreshold 0.99\n");
  auto links = RunLinkSpec(left_, right_, spec);
  ASSERT_EQ(links.size(), 1u);  // Only Alice matches both rules exactly.
  EXPECT_TRUE(HasLink(links, L(0), R(0)));
}

TEST_F(LinkSpecRunTest, MaxAggregationAcceptsAnyRule) {
  LinkSpec spec = *ParseLinkSpec(
      "compare http://l/name http://r/name using exact\n"
      "compare http://l/birth http://r/birth using date\n"
      "aggregate max\nthreshold 0.99\n");
  auto links = RunLinkSpec(left_, right_, spec);
  EXPECT_TRUE(HasLink(links, L(0), R(0)));
  EXPECT_TRUE(HasLink(links, L(1), R(1)));  // Birth date alone suffices.
}

TEST_F(LinkSpecRunTest, UnknownPredicatesYieldNothing) {
  LinkSpec spec = *ParseLinkSpec(
      "compare http://l/nope http://r/nada using exact\nthreshold 0.5\n");
  EXPECT_TRUE(RunLinkSpec(left_, right_, spec).empty());
}

TEST_F(LinkSpecRunTest, ScoresAreBoundedAndSorted) {
  LinkSpec spec = *ParseLinkSpec(
      "compare http://l/name http://r/name using trigram_dice\n"
      "threshold 0.3\n");
  auto links = RunLinkSpec(left_, right_, spec);
  for (size_t i = 0; i < links.size(); ++i) {
    EXPECT_GE(links[i].score, 0.3);
    EXPECT_LE(links[i].score, 1.0);
    if (i > 0) {
      EXPECT_TRUE(std::tie(links[i - 1].left, links[i - 1].right) <
                  std::tie(links[i].left, links[i].right));
    }
  }
}

}  // namespace
}  // namespace alex::paris
