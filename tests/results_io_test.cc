#include "sparql/results_io.h"

#include <sstream>

#include <gtest/gtest.h>

namespace alex::sparql {
namespace {

using rdf::Term;

QueryResult SampleResult() {
  QueryResult r;
  r.variables = {"s", "v"};
  r.rows.push_back({Term::Iri("http://x/a"), Term::Literal("hello")});
  r.rows.push_back({Term::Blank("b0"),
                    Term::TypedLiteral("5", std::string(rdf::kXsdInteger))});
  r.rows.push_back({Term::Iri("http://x/c"), Term::LangLiteral("salut", "fr")});
  r.rows.push_back({Term::Iri("http://x/d"), Term::Literal("")});  // Unbound.
  return r;
}

TEST(ResultsJsonTest, StructureAndTypes) {
  std::ostringstream os;
  WriteResultsJson(SampleResult(), os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"vars\": [\"s\", \"v\"]"), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"uri\", \"value\": \"http://x/a\""),
            std::string::npos);
  EXPECT_NE(json.find("\"type\": \"bnode\", \"value\": \"b0\""),
            std::string::npos);
  EXPECT_NE(json.find("\"datatype\": \"http://www.w3.org/2001/"
                      "XMLSchema#integer\""),
            std::string::npos);
  EXPECT_NE(json.find("\"xml:lang\": \"fr\""), std::string::npos);
}

TEST(ResultsJsonTest, UnboundCellsOmitted) {
  std::ostringstream os;
  WriteResultsJson(SampleResult(), os);
  const std::string json = os.str();
  // The fourth row binds only ?s.
  EXPECT_NE(json.find("{\"s\": {\"type\": \"uri\", \"value\": "
                      "\"http://x/d\"}}"),
            std::string::npos);
}

TEST(ResultsJsonTest, EmptyResult) {
  QueryResult r;
  r.variables = {"x"};
  std::ostringstream os;
  WriteResultsJson(r, os);
  EXPECT_EQ(os.str(),
            "{\"head\": {\"vars\": [\"x\"]}, \"results\": {\"bindings\": "
            "[]}}\n");
}

TEST(ResultsJsonTest, EscapingInValues) {
  QueryResult r;
  r.variables = {"v"};
  r.rows.push_back({Term::Literal("a\"b\\c\nd\x01")});
  std::ostringstream os;
  WriteResultsJson(r, os);
  EXPECT_NE(os.str().find(R"(a\"b\\c\nd)"), std::string::npos);
}

TEST(JsonEscapeTest, Basics) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("q\"q"), "q\\\"q");
  EXPECT_EQ(JsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonEscape(""), "");
}

TEST(ResultsTsvTest, HeaderAndRows) {
  std::ostringstream os;
  WriteResultsTsv(SampleResult(), os);
  const std::string tsv = os.str();
  EXPECT_EQ(tsv.substr(0, 6), "?s\t?v\n");
  EXPECT_NE(tsv.find("<http://x/a>\t\"hello\""), std::string::npos);
  EXPECT_NE(tsv.find("_:b0\t\"5\"^^<http://www.w3.org/2001/XMLSchema#integer>"),
            std::string::npos);
  EXPECT_NE(tsv.find("\"salut\"@fr"), std::string::npos);
  // Unbound cell renders empty.
  EXPECT_NE(tsv.find("<http://x/d>\t\n"), std::string::npos);
}

TEST(AskJsonTest, Verdicts) {
  std::ostringstream yes, no;
  WriteAskJson(true, yes);
  WriteAskJson(false, no);
  EXPECT_EQ(yes.str(), "{\"head\": {}, \"boolean\": true}\n");
  EXPECT_EQ(no.str(), "{\"head\": {}, \"boolean\": false}\n");
}

}  // namespace
}  // namespace alex::sparql
