#include "common/rng.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace alex {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 15);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformDoubleRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble(-2.5, 3.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.UniformInt(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // All values reachable.
}

TEST(RngTest, UniformIntOne) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(1), 0u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliApproximatesProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, SampleWeightedRespectsWeights) {
  Rng rng(17);
  std::vector<double> weights = {0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.SampleWeighted(weights)];
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, SampleWeightedAllZeroFallsBackToUniform) {
  Rng rng(19);
  std::vector<double> weights = {0.0, 0.0, 0.0};
  std::set<size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.SampleWeighted(weights));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> original = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, original);  // Astronomically unlikely to be identity.
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ShuffleEmptyAndSingle) {
  Rng rng(29);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  // Child differs from a fresh copy of the parent's continued stream.
  bool differs = false;
  Rng parent2(31);
  parent2.Next();  // Fork consumed one draw.
  for (int i = 0; i < 10; ++i) {
    if (child.Next() != parent2.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, GaussianRoughMoments) {
  Rng rng(37);
  double sum = 0.0;
  double sumsq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

class RngSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedSweep, UniformDoubleMeanNearHalf) {
  Rng rng(GetParam());
  double sum = 0.0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.03);
}

TEST_P(RngSeedSweep, UniformIntUnbiasedOverSmallModulus) {
  Rng rng(GetParam());
  std::vector<int> counts(7, 0);
  const int n = 14000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(7)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 1.0 / 7, 0.02);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0, 1, 42, 12345, 987654321,
                                           0xdeadbeefULL));

}  // namespace
}  // namespace alex
