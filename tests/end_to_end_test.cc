// Integration tests spanning all modules: synthetic data -> PARIS ->
// partitioned ALEX -> federated querying with feedback on query answers —
// the full pipeline of Figure 1 in the paper.

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "core/partitioned.h"
#include "datagen/generator.h"
#include "federation/federated_engine.h"
#include "feedback/oracle.h"
#include "paris/paris.h"
#include "simulation/simulation.h"

namespace alex {
namespace {

using core::PartitionedAlex;
using feedback::PackPair;

TEST(EndToEndTest, PipelineImprovesLinkQuality) {
  datagen::ScenarioConfig scenario;
  scenario.name = "e2e";
  scenario.seed = 404;
  scenario.num_shared = 60;
  scenario.num_left_only = 40;
  scenario.num_right_only = 20;
  scenario.domains = {"person", "organization"};
  scenario.value_noise = 0.5;
  scenario.ambiguity = 0.4;
  datagen::GeneratedPair pair = datagen::GenerateScenario(scenario);

  paris::ParisLinker linker(&pair.left, &pair.right);
  std::vector<paris::ScoredLink> initial = linker.Run();
  ASSERT_FALSE(initial.empty());

  core::AlexConfig config;
  config.num_partitions = 4;
  config.num_threads = 2;
  config.episode_size = 100;
  config.max_episodes = 40;
  PartitionedAlex alex(&pair.left, &pair.right, config);
  alex.Build();
  alex.InitializeCandidates(initial);

  const core::LinkSetMetrics before =
      core::ComputeMetrics(alex.Candidates(), pair.truth);

  feedback::Oracle oracle(&pair.truth, 0.0, 17);
  for (size_t episode = 0; episode < config.max_episodes; ++episode) {
    for (size_t i = 0; i < config.episode_size; ++i) {
      auto item = oracle.SampleAndJudge(alex.CandidateVector());
      if (!item) break;
      alex.ProcessFeedback(*item);
    }
    alex.EndEpisode();
  }

  const core::LinkSetMetrics after =
      core::ComputeMetrics(alex.Candidates(), pair.truth);
  EXPECT_GT(after.f_measure, before.f_measure);
  EXPECT_GT(after.recall, before.recall);
  EXPECT_GT(after.f_measure, 0.8);
}

/// The feedback channel of the paper: a federated query produces answers
/// whose provenance names the links used; rejecting an answer removes the
/// offending link from both the federation index and the ALEX engine.
TEST(EndToEndTest, FederatedFeedbackRemovesWrongLink) {
  datagen::ScenarioConfig scenario;
  scenario.name = "fedloop";
  scenario.seed = 505;
  scenario.num_shared = 20;
  scenario.num_left_only = 5;
  scenario.num_right_only = 5;
  scenario.domains = {"person"};
  scenario.value_noise = 0.0;
  datagen::GeneratedPair pair = datagen::GenerateScenario(scenario);

  // Link index: all ground-truth links plus one deliberately wrong link.
  fed::LinkIndex links;
  for (feedback::PairKey key : pair.truth.pairs()) {
    links.Add(pair.left.entity_iri(feedback::PairLeft(key)),
              pair.right.entity_iri(feedback::PairRight(key)));
  }
  const std::string wrong_left = pair.left.entity_iri(0);
  // Find a right entity NOT linked to left 0.
  std::string wrong_right;
  for (rdf::EntityId r = 0; r < pair.right.num_entities(); ++r) {
    if (!pair.truth.Contains(0, r)) {
      wrong_right = pair.right.entity_iri(r);
      break;
    }
  }
  ASSERT_FALSE(wrong_right.empty());
  links.Add(wrong_left, wrong_right);

  fed::Endpoint left_ep(&pair.left);
  fed::Endpoint right_ep(&pair.right);
  fed::FederatedEngine engine(&left_ep, &right_ep, &links);

  // Federated query: the right-side name of the wrong_left entity. The
  // sameAs expansion reaches the right KB through BOTH the correct link
  // and the wrong one, so one answer row is wrong.
  const std::string name_pred_right =
      "http://" + pair.right.name() + ".example.org/ontology/name";
  auto r = engine.ExecuteText("SELECT ?n WHERE { <" + wrong_left + "> <" +
                              name_pred_right + "> ?n . }");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_GE(r->NumRows(), 2u);

  // The user rejects wrong answers; the provenance names the link to blame
  // (paper Section 3.2). Reject every row whose links disagree with truth.
  size_t removed = 0;
  for (const fed::ProvenancedRow& row : r->rows) {
    for (const fed::SameAsLink& link : row.links_used) {
      auto l = pair.left.FindEntityByIri(link.left_iri);
      auto rr = pair.right.FindEntityByIri(link.right_iri);
      ASSERT_TRUE(l && rr);
      if (!pair.truth.Contains(*l, *rr) &&
          links.Remove(link.left_iri, link.right_iri)) {
        ++removed;
      }
    }
  }
  EXPECT_EQ(removed, 1u);
  EXPECT_FALSE(links.Contains(wrong_left, wrong_right));
  EXPECT_EQ(links.size(), pair.truth.size());

  // Re-running the query now returns only the correct answer.
  auto r2 = engine.ExecuteText("SELECT ?n WHERE { <" + wrong_left + "> <" +
                               name_pred_right + "> ?n . }");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->NumRows(), 1u);
}

TEST(EndToEndTest, SimulationMatchesManualLoop) {
  // The Simulation driver must agree with a hand-rolled loop on the same
  // deterministic configuration.
  simulation::SimulationConfig config;
  config.scenario.name = "agree";
  config.scenario.seed = 71;
  config.scenario.num_shared = 25;
  config.scenario.num_left_only = 15;
  config.scenario.num_right_only = 10;
  config.scenario.domains = {"drug"};
  config.alex.episode_size = 30;
  config.alex.num_partitions = 2;
  config.alex.max_episodes = 10;
  simulation::RunResult result = simulation::Simulation(config).Run();
  ASSERT_GE(result.episodes.size(), 2u);
  // Episode 0 equals PARIS output quality.
  datagen::GeneratedPair pair = datagen::GenerateScenario(config.scenario);
  auto links = paris::ParisLinker(&pair.left, &pair.right,
                                  config.paris).Run();
  std::unordered_set<feedback::PairKey> initial;
  for (const auto& l : links) initial.insert(PackPair(l.left, l.right));
  core::LinkSetMetrics m0 = core::ComputeMetrics(initial, pair.truth);
  EXPECT_DOUBLE_EQ(result.episodes[0].metrics.precision, m0.precision);
  EXPECT_DOUBLE_EQ(result.episodes[0].metrics.recall, m0.recall);
  EXPECT_EQ(result.initial_links, links.size());
}

}  // namespace
}  // namespace alex
