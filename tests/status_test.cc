#include "common/status.h"

#include <sstream>

#include <gtest/gtest.h>

#include "common/result.h"

namespace alex {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotFound("missing key").message(), "missing key");
  EXPECT_FALSE(Status::NotFound("x").ok());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  EXPECT_EQ(Status::ParseError("bad token").ToString(),
            "ParseError: bad token");
  EXPECT_EQ(Status(StatusCode::kIOError, "").ToString(), "IOError");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::OutOfRange("idx");
  EXPECT_EQ(os.str(), "OutOfRange: idx");
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
}

Status Fails() { return Status::IOError("disk"); }
Status Succeeds() { return Status::OK(); }

Status UseReturnNotOk(bool fail) {
  ALEX_RETURN_NOT_OK(fail ? Fails() : Succeeds());
  return Status::AlreadyExists("fell through");
}

TEST(StatusTest, ReturnNotOkMacro) {
  EXPECT_EQ(UseReturnNotOk(true).code(), StatusCode::kIOError);
  EXPECT_EQ(UseReturnNotOk(false).code(), StatusCode::kAlreadyExists);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r(std::string("hi"));
  EXPECT_EQ(r.ValueOr("fallback"), "hi");
}

TEST(ResultTest, OkStatusIsNormalizedToInternalError) {
  Result<int> r(Status::OK());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  ALEX_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(Quarter(8).value(), 2);
  // 6 fails at the second Half (3 is odd); 7 fails at the first.
  EXPECT_EQ(Quarter(6).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Quarter(7).status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace alex
