#include "core/config.h"

#include <gtest/gtest.h>

namespace alex::core {
namespace {

TEST(ConfigTest, PaperDefaults) {
  AlexConfig config;
  EXPECT_DOUBLE_EQ(config.theta, 0.3);
  EXPECT_DOUBLE_EQ(config.step_size, 0.05);
  EXPECT_EQ(config.episode_size, 1000u);
  EXPECT_EQ(config.num_partitions, 27u);
  EXPECT_EQ(config.max_episodes, 100u);
  EXPECT_DOUBLE_EQ(config.relaxed_fraction, 0.05);
  EXPECT_TRUE(config.use_blacklist);
  EXPECT_TRUE(config.use_rollback);
}

TEST(ConfigTest, AdaptiveMaxLinksPerAction) {
  AlexConfig config;
  config.episode_size = 1000;
  EXPECT_EQ(config.EffectiveMaxLinksPerAction(), 50u);  // episode/20.
  config.episode_size = 10;
  EXPECT_EQ(config.EffectiveMaxLinksPerAction(), 10u);  // Floor.
  config.episode_size = 100000;
  EXPECT_EQ(config.EffectiveMaxLinksPerAction(), 5000u);
  config.max_links_per_action = 7;  // Explicit override wins.
  EXPECT_EQ(config.EffectiveMaxLinksPerAction(), 7u);
}

TEST(ConfigTest, AdaptiveRollbackThreshold) {
  AlexConfig config;
  config.episode_size = 1000;
  EXPECT_EQ(config.EffectiveRollbackThreshold(), 5u);
  config.episode_size = 10;
  EXPECT_EQ(config.EffectiveRollbackThreshold(), 2u);
  config.episode_size = 200;
  EXPECT_EQ(config.EffectiveRollbackThreshold(), 5u);  // Boundary.
  config.rollback_threshold = 9;  // Explicit override wins.
  EXPECT_EQ(config.EffectiveRollbackThreshold(), 9u);
}

}  // namespace
}  // namespace alex::core
