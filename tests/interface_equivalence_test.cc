// Interface-equivalence suite for the pluggable linker/policy refactor:
// the engine now drives its policy through the abstract core::Policy
// interface and the simulation obtains initial links through
// core::SeedLinker, and for the default pair (PARIS + ε-greedy) the result
// must be BIT-IDENTICAL to the pre-refactor concrete path. The golden
// digests below were captured by running this exact recipe against the
// pre-refactor build (commit with the concrete members); they cannot be
// regenerated from current sources, only re-verified.

#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "core/partitioned.h"
#include "core/policy.h"
#include "datagen/scenarios.h"
#include "feedback/oracle.h"
#include "paris/seed_linkers.h"
#include "rl/adaptive_policy.h"

namespace alex {
namespace {

uint64_t HashU64(uint64_t v, uint64_t h) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t HashDouble(double v, uint64_t h) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return HashU64(bits, h);
}

struct Digests {
  uint64_t links = 0xcbf29ce484222325ULL;
  uint64_t curve = 0xcbf29ce484222325ULL;
};

/// The golden capture recipe: DbpediaSwdf scenario, default-config PARIS
/// seeds, 6 episodes of 120 feedback items against a 10%-error oracle
/// seeded from the run seed. Routed through the post-refactor interfaces;
/// any behavioral drift in the default linker/policy pair shows up as a
/// digest mismatch.
Digests RunOne(uint64_t seed, size_t partitions, const std::string& policy) {
  datagen::ScenarioConfig scenario = datagen::DbpediaSwdf();
  auto data = datagen::GenerateScenario(scenario);

  auto linker = paris::MakeSeedLinker(paris::kParisLinkerTag, &data.left,
                                      &data.right);
  EXPECT_TRUE(linker.ok()) << linker.status();
  const std::vector<paris::ScoredLink> initial = (*linker)->Run();

  core::AlexConfig cfg;
  cfg.num_partitions = partitions;
  cfg.seed = seed;
  cfg.episode_size = 120;
  cfg.max_episodes = 6;
  cfg.num_threads = 2;
  cfg.policy = policy;

  core::PartitionedAlex alex(&data.left, &data.right, cfg);
  alex.Build();
  alex.InitializeCandidates(initial);

  feedback::Oracle oracle(&data.truth, 0.1, seed * 1000 + 99);

  Digests d;
  for (size_t episode = 1; episode <= cfg.max_episodes; ++episode) {
    for (size_t i = 0; i < cfg.episode_size; ++i) {
      const std::vector<feedback::PairKey> candidates = alex.CandidateVector();
      auto item = oracle.SampleAndJudge(candidates);
      if (!item.has_value()) break;
      alex.ProcessFeedback(*item);
    }
    alex.EndEpisode();
    const core::LinkSetMetrics m =
        core::ComputeMetrics(alex.Candidates(), data.truth);
    d.curve = HashDouble(m.precision, d.curve);
    d.curve = HashDouble(m.recall, d.curve);
    d.curve = HashDouble(m.f_measure, d.curve);
    d.curve = HashU64(m.candidates, d.curve);
  }
  for (feedback::PairKey key : alex.CandidateVector()) {
    d.links = HashU64(key, d.links);
  }
  return d;
}

struct Golden {
  uint64_t seed;
  size_t partitions;
  uint64_t links;
  uint64_t curve;
};

// Captured from the pre-refactor build (concrete ParisLinker +
// EpsilonGreedyPolicy members). 3 seeds x 2 partition counts.
constexpr Golden kGoldens[] = {
    {11ull, 2, 0x2b74b9a0e66e2ae1ull, 0xc96b98e57c291d1eull},
    {11ull, 4, 0x2f39ad2d73086d5full, 0x1319ded68b7c8a61ull},
    {12ull, 2, 0xf566e0fc8d5140ebull, 0xc9308c4b158579fbull},
    {12ull, 4, 0x2d0f8e36e4cc6e10ull, 0x007b995ba5549d8aull},
    {13ull, 2, 0xc2382cb9db1adfd5ull, 0x8853fed3a6a16a5bull},
    {13ull, 4, 0x461788b709700bbbull, 0x40fa21ecbb7f19c7ull},
};

TEST(InterfaceEquivalence, DefaultPairMatchesPreRefactorGoldens) {
  for (const Golden& g : kGoldens) {
    const Digests d = RunOne(g.seed, g.partitions, "epsilon-greedy");
    EXPECT_EQ(d.links, g.links)
        << "link digest drifted at seed=" << g.seed
        << " partitions=" << g.partitions;
    EXPECT_EQ(d.curve, g.curve)
        << "episode-curve digest drifted at seed=" << g.seed
        << " partitions=" << g.partitions;
  }
}

TEST(InterfaceEquivalence, RunsAreInternallyDeterministic) {
  const Digests a = RunOne(11, 2, "epsilon-greedy");
  const Digests b = RunOne(11, 2, "epsilon-greedy");
  EXPECT_EQ(a.links, b.links);
  EXPECT_EQ(a.curve, b.curve);
}

TEST(InterfaceEquivalence, AdaptivePolicyIsDeterministicAndDistinct) {
  rl::RegisterAdaptiveFeaturePolicy();
  const Digests a = RunOne(11, 2, "adaptive-feature");
  const Digests b = RunOne(11, 2, "adaptive-feature");
  EXPECT_EQ(a.links, b.links);
  EXPECT_EQ(a.curve, b.curve);
  // A different policy must actually change the trajectory — identical
  // digests would mean the tag is silently falling back to the default.
  const Digests base = RunOne(11, 2, "epsilon-greedy");
  EXPECT_NE(a.curve, base.curve);
}

}  // namespace
}  // namespace alex
