#include "sparql/parser.h"

#include <gtest/gtest.h>

namespace alex::sparql {
namespace {

SelectQuery MustParse(std::string_view q) {
  auto r = ParseQuery(q);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ValueOr(SelectQuery{});
}

TEST(ParserTest, MinimalQuery) {
  SelectQuery q = MustParse("SELECT ?s WHERE { ?s <http://p> ?o . }");
  EXPECT_FALSE(q.distinct);
  EXPECT_EQ(q.projection, std::vector<std::string>{"s"});
  ASSERT_EQ(q.where.size(), 1u);
  EXPECT_TRUE(IsVariable(q.where[0].subject));
  EXPECT_FALSE(IsVariable(q.where[0].predicate));
  EXPECT_EQ(std::get<rdf::Term>(q.where[0].predicate).value, "http://p");
  EXPECT_FALSE(q.limit.has_value());
}

TEST(ParserTest, SelectStar) {
  SelectQuery q = MustParse("SELECT * WHERE { ?s ?p ?o . }");
  EXPECT_TRUE(q.projection.empty());
}

TEST(ParserTest, DistinctAndLimit) {
  SelectQuery q =
      MustParse("SELECT DISTINCT ?s WHERE { ?s ?p ?o . } LIMIT 10");
  EXPECT_TRUE(q.distinct);
  ASSERT_TRUE(q.limit.has_value());
  EXPECT_EQ(*q.limit, 10u);
}

TEST(ParserTest, MultiplePatternsAndTrailingDotOptionalBeforeBrace) {
  SelectQuery q = MustParse(
      "SELECT ?a ?b WHERE { ?a <http://p> ?b . ?b <http://q> \"v\" }");
  EXPECT_EQ(q.where.size(), 2u);
}

TEST(ParserTest, PrefixResolution) {
  SelectQuery q = MustParse(
      "PREFIX foaf: <http://xmlns.com/foaf/0.1/> "
      "SELECT ?s WHERE { ?s foaf:name ?n . }");
  EXPECT_EQ(std::get<rdf::Term>(q.where[0].predicate).value,
            "http://xmlns.com/foaf/0.1/name");
}

TEST(ParserTest, UndeclaredPrefixFails) {
  EXPECT_FALSE(ParseQuery("SELECT ?s WHERE { ?s foaf:name ?n . }").ok());
}

TEST(ParserTest, AKeywordExpandsToRdfType) {
  SelectQuery q = MustParse("SELECT ?s WHERE { ?s a <http://x/C> . }");
  EXPECT_EQ(std::get<rdf::Term>(q.where[0].predicate).value,
            std::string(rdf::kRdfType));
}

TEST(ParserTest, LiteralObjects) {
  SelectQuery q = MustParse(
      "SELECT ?s WHERE { "
      "?s <http://p> \"txt\" . "
      "?s <http://q> \"hi\"@en . "
      "?s <http://r> \"5\"^^<http://dt> . "
      "?s <http://n> 42 . "
      "?s <http://m> 3.5 . }");
  ASSERT_EQ(q.where.size(), 5u);
  EXPECT_EQ(std::get<rdf::Term>(q.where[1].object).language, "en");
  EXPECT_EQ(std::get<rdf::Term>(q.where[2].object).datatype, "http://dt");
  EXPECT_EQ(std::get<rdf::Term>(q.where[3].object).datatype,
            std::string(rdf::kXsdInteger));
  EXPECT_EQ(std::get<rdf::Term>(q.where[4].object).datatype,
            std::string(rdf::kXsdDouble));
}

TEST(ParserTest, Filters) {
  SelectQuery q = MustParse(
      "SELECT ?s WHERE { ?s <http://p> ?age . FILTER(?age >= 18) "
      "FILTER(?age != 99) }");
  ASSERT_EQ(q.filters.size(), 2u);
  EXPECT_EQ(q.filters[0].var.name, "age");
  EXPECT_EQ(q.filters[0].op, CompareOp::kGe);
  EXPECT_EQ(q.filters[1].op, CompareOp::kNe);
}

TEST(ParserTest, AllFilterOperators) {
  const std::pair<const char*, CompareOp> cases[] = {
      {"=", CompareOp::kEq},  {"!=", CompareOp::kNe},
      {"<", CompareOp::kLt},  {"<=", CompareOp::kLe},
      {">", CompareOp::kGt},  {">=", CompareOp::kGe},
  };
  for (const auto& [op, expected] : cases) {
    SelectQuery q = MustParse(std::string("SELECT ?s WHERE { ?s <http://p> "
                                          "?v . FILTER(?v ") +
                              op + " 5) }");
    ASSERT_EQ(q.filters.size(), 1u) << op;
    EXPECT_EQ(q.filters[0].op, expected) << op;
  }
}

TEST(ParserTest, MentionedVariables) {
  SelectQuery q = MustParse(
      "SELECT * WHERE { ?a <http://p> ?b . ?b <http://q> ?c . }");
  EXPECT_EQ(q.MentionedVariables(),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(ParserTest, ProjectionOrderPreserved) {
  SelectQuery q =
      MustParse("SELECT ?b ?a WHERE { ?a <http://p> ?b . }");
  EXPECT_EQ(q.projection, (std::vector<std::string>{"b", "a"}));
}

TEST(ParserTest, OptionalBlocks) {
  SelectQuery q = MustParse(
      "SELECT ?s ?f WHERE { ?s <http://p> ?n . "
      "OPTIONAL { ?s <http://q> ?f . FILTER(?f != \"x\") } "
      "OPTIONAL { ?s <http://r> ?g . } }");
  EXPECT_EQ(q.where.size(), 1u);
  ASSERT_EQ(q.optionals.size(), 2u);
  EXPECT_EQ(q.optionals[0].patterns.size(), 1u);
  EXPECT_EQ(q.optionals[0].filters.size(), 1u);
  EXPECT_EQ(q.optionals[1].patterns.size(), 1u);
  EXPECT_TRUE(q.optionals[1].filters.empty());
  // Optional variables are mentioned.
  EXPECT_EQ(q.MentionedVariables(),
            (std::vector<std::string>{"s", "n", "f", "g"}));
}

TEST(ParserTest, UnionBranches) {
  SelectQuery q = MustParse(
      "SELECT ?s WHERE { { ?s <http://p> ?a . } UNION { ?s <http://q> ?b . } "
      "UNION { ?s <http://r> ?c . } }");
  EXPECT_TRUE(q.where.empty());
  ASSERT_EQ(q.union_branches.size(), 3u);
  for (const auto& branch : q.union_branches) {
    EXPECT_EQ(branch.size(), 1u);
  }
}

TEST(ParserTest, OrderByVariants) {
  SelectQuery a = MustParse(
      "SELECT ?s WHERE { ?s ?p ?o . } ORDER BY ?s LIMIT 3");
  ASSERT_TRUE(a.order_by.has_value());
  EXPECT_FALSE(a.order_by->descending);
  EXPECT_EQ(a.order_by->var.name, "s");
  SelectQuery d = MustParse("SELECT ?s WHERE { ?s ?p ?o . } ORDER BY DESC ?s");
  EXPECT_TRUE(d.order_by->descending);
  SelectQuery asc = MustParse("SELECT ?s WHERE { ?s ?p ?o . } ORDER BY ASC ?s");
  EXPECT_FALSE(asc.order_by->descending);
}

TEST(ParserTest, AskForms) {
  EXPECT_TRUE(MustParse("ASK { ?s ?p ?o . }").is_ask);
  EXPECT_TRUE(MustParse("ASK WHERE { ?s ?p ?o . }").is_ask);
  EXPECT_FALSE(MustParse("SELECT * WHERE { ?s ?p ?o . }").is_ask);
}

TEST(ParserTest, NewSyntaxErrors) {
  // Single group without UNION.
  EXPECT_FALSE(ParseQuery("SELECT ?s WHERE { { ?s ?p ?o . } }").ok());
  // Empty UNION branch.
  EXPECT_FALSE(
      ParseQuery("SELECT ?s WHERE { { } UNION { ?s ?p ?o . } }").ok());
  // Empty OPTIONAL.
  EXPECT_FALSE(
      ParseQuery("SELECT ?s WHERE { ?s ?p ?o . OPTIONAL { } }").ok());
  // ORDER without BY.
  EXPECT_FALSE(ParseQuery("SELECT ?s WHERE { ?s ?p ?o . } ORDER ?s").ok());
  // ORDER BY without a variable.
  EXPECT_FALSE(ParseQuery("SELECT ?s WHERE { ?s ?p ?o . } ORDER BY 5").ok());
  // ASK with trailing tokens.
  EXPECT_FALSE(ParseQuery("ASK { ?s ?p ?o . } LIMIT 3").ok());
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("WHERE { ?s ?p ?o . }").ok());
  EXPECT_FALSE(ParseQuery("SELECT WHERE { ?s ?p ?o . }").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?s { ?s ?p ?o . }").ok());  // No WHERE.
  EXPECT_FALSE(ParseQuery("SELECT ?s WHERE { }").ok());       // Empty BGP.
  EXPECT_FALSE(ParseQuery("SELECT ?s WHERE { ?s ?p }").ok()); // Short pattern.
  EXPECT_FALSE(ParseQuery("SELECT ?s WHERE { ?s ?p ?o . } trailing").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?s WHERE { ?s ?p ?o . ").ok());
  EXPECT_FALSE(
      ParseQuery("SELECT ?s WHERE { ?s ?p ?o . FILTER(?a = ?b) }").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?s WHERE { ?s ?p ?o . } LIMIT x").ok());
}

}  // namespace
}  // namespace alex::sparql
