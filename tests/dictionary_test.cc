#include "rdf/dictionary.h"

#include <gtest/gtest.h>

namespace alex::rdf {
namespace {

TEST(DictionaryTest, InternAssignsDenseIds) {
  Dictionary dict;
  EXPECT_EQ(dict.size(), 0u);
  TermId a = dict.Intern(Term::Iri("http://a"));
  TermId b = dict.Intern(Term::Iri("http://b"));
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(dict.size(), 2u);
}

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary dict;
  TermId a1 = dict.Intern(Term::Iri("http://a"));
  TermId a2 = dict.Intern(Term::Iri("http://a"));
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(DictionaryTest, RoundTrip) {
  Dictionary dict;
  Term t = Term::TypedLiteral("3.14", std::string(kXsdDouble));
  TermId id = dict.Intern(t);
  EXPECT_EQ(dict.term(id), t);
}

TEST(DictionaryTest, LookupFindsOnlyInterned) {
  Dictionary dict;
  dict.Intern(Term::Literal("x"));
  EXPECT_TRUE(dict.Lookup(Term::Literal("x")).has_value());
  EXPECT_FALSE(dict.Lookup(Term::Literal("y")).has_value());
  EXPECT_FALSE(dict.Lookup(Term::Iri("x")).has_value());
}

TEST(DictionaryTest, DistinguishesLiteralVariants) {
  Dictionary dict;
  TermId plain = dict.Intern(Term::Literal("v"));
  TermId typed = dict.Intern(Term::TypedLiteral("v", "http://dt"));
  TermId lang = dict.Intern(Term::LangLiteral("v", "en"));
  EXPECT_NE(plain, typed);
  EXPECT_NE(plain, lang);
  EXPECT_NE(typed, lang);
}

TEST(DictionaryTest, ConvenienceInterners) {
  Dictionary dict;
  TermId iri = dict.InternIri("http://a");
  TermId lit = dict.InternLiteral("a");
  EXPECT_TRUE(dict.term(iri).is_iri());
  EXPECT_TRUE(dict.term(lit).is_literal());
}

TEST(DictionaryTest, ManyTerms) {
  Dictionary dict;
  for (int i = 0; i < 1000; ++i) {
    dict.InternIri("http://x/" + std::to_string(i));
  }
  EXPECT_EQ(dict.size(), 1000u);
  auto id = dict.Lookup(Term::Iri("http://x/537"));
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(dict.term(*id).value, "http://x/537");
}

}  // namespace
}  // namespace alex::rdf
