#include "rdf/dictionary.h"

#include <utility>

#include <gtest/gtest.h>

namespace alex::rdf {
namespace {

TEST(DictionaryTest, InternAssignsDenseIds) {
  Dictionary dict;
  EXPECT_EQ(dict.size(), 0u);
  TermId a = dict.Intern(Term::Iri("http://a"));
  TermId b = dict.Intern(Term::Iri("http://b"));
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(dict.size(), 2u);
}

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary dict;
  TermId a1 = dict.Intern(Term::Iri("http://a"));
  TermId a2 = dict.Intern(Term::Iri("http://a"));
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(DictionaryTest, RoundTrip) {
  Dictionary dict;
  Term t = Term::TypedLiteral("3.14", std::string(kXsdDouble));
  TermId id = dict.Intern(t);
  EXPECT_EQ(dict.term(id), t);
}

TEST(DictionaryTest, LookupFindsOnlyInterned) {
  Dictionary dict;
  dict.Intern(Term::Literal("x"));
  EXPECT_TRUE(dict.Lookup(Term::Literal("x")).has_value());
  EXPECT_FALSE(dict.Lookup(Term::Literal("y")).has_value());
  EXPECT_FALSE(dict.Lookup(Term::Iri("x")).has_value());
}

TEST(DictionaryTest, DistinguishesLiteralVariants) {
  Dictionary dict;
  TermId plain = dict.Intern(Term::Literal("v"));
  TermId typed = dict.Intern(Term::TypedLiteral("v", "http://dt"));
  TermId lang = dict.Intern(Term::LangLiteral("v", "en"));
  EXPECT_NE(plain, typed);
  EXPECT_NE(plain, lang);
  EXPECT_NE(typed, lang);
}

TEST(DictionaryTest, ConvenienceInterners) {
  Dictionary dict;
  TermId iri = dict.InternIri("http://a");
  TermId lit = dict.InternLiteral("a");
  EXPECT_TRUE(dict.term(iri).is_iri());
  EXPECT_TRUE(dict.term(lit).is_literal());
}

TEST(DictionaryTest, ManyTerms) {
  Dictionary dict;
  for (int i = 0; i < 1000; ++i) {
    dict.InternIri("http://x/" + std::to_string(i));
  }
  EXPECT_EQ(dict.size(), 1000u);
  auto id = dict.Lookup(Term::Iri("http://x/537"));
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(dict.term(*id).value, "http://x/537");
}


// The index hashes/compares TermIds through the term vector; these tests
// pin down that the vector's address stays valid across moves and that a
// copy re-points its functors at its own storage.
TEST(DictionaryTest, MoveKeepsIndexValid) {
  Dictionary dict;
  for (int i = 0; i < 200; ++i) {
    dict.InternIri("http://move/" + std::to_string(i));
  }
  Dictionary moved(std::move(dict));
  EXPECT_EQ(moved.size(), 200u);
  auto id = moved.Lookup(Term::Iri("http://move/123"));
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(moved.term(*id).value, "http://move/123");
  // Interning through the moved-to dictionary keeps working.
  EXPECT_EQ(moved.InternIri("http://move/123"), *id);
  EXPECT_EQ(moved.InternIri("http://move/new"), 200u);

  Dictionary assigned = Dictionary();
  assigned = std::move(moved);
  EXPECT_TRUE(assigned.Lookup(Term::Iri("http://move/42")).has_value());
  EXPECT_EQ(assigned.InternIri("http://move/another"), 201u);
}

TEST(DictionaryTest, CopyIsIndependent) {
  Dictionary dict;
  for (int i = 0; i < 50; ++i) {
    dict.InternIri("http://copy/" + std::to_string(i));
  }
  Dictionary copy(dict);
  EXPECT_EQ(copy.size(), dict.size());
  EXPECT_EQ(copy.Lookup(Term::Iri("http://copy/7")),
            dict.Lookup(Term::Iri("http://copy/7")));
  // Diverge: new terms in the copy must not appear in the original.
  copy.InternIri("http://copy/only-in-copy");
  EXPECT_TRUE(copy.Lookup(Term::Iri("http://copy/only-in-copy")).has_value());
  EXPECT_FALSE(dict.Lookup(Term::Iri("http://copy/only-in-copy")).has_value());
  // And the original keeps interning with its own id sequence.
  EXPECT_EQ(dict.InternIri("http://copy/50"), 50u);

  Dictionary assigned;
  assigned.InternIri("http://other");
  assigned = dict;
  EXPECT_EQ(assigned.size(), dict.size());
  EXPECT_TRUE(assigned.Lookup(Term::Iri("http://copy/49")).has_value());
  EXPECT_FALSE(assigned.Lookup(Term::Iri("http://other")).has_value());
}

TEST(DictionaryTest, ApproxMemoryBytesGrowsWithContent) {
  Dictionary dict;
  const size_t empty_bytes = dict.ApproxMemoryBytes();
  for (int i = 0; i < 100; ++i) {
    dict.InternIri("http://mem/" + std::to_string(i));
  }
  EXPECT_GT(dict.ApproxMemoryBytes(), empty_bytes);
}

}  // namespace
}  // namespace alex::rdf
