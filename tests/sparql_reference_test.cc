// Property test: the optimized BGP evaluator (index-backed joins, greedy
// ordering, eager filters) must agree with a naive reference evaluator on
// randomly generated stores and queries.

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sparql/evaluator.h"

namespace alex::sparql {
namespace {

using rdf::Term;

struct RandomWorld {
  rdf::Dataset ds{"w"};
  std::vector<Term> subjects;
  std::vector<Term> predicates;
  std::vector<Term> objects;
};

RandomWorld MakeWorld(Rng* rng) {
  RandomWorld w;
  for (int i = 0; i < 8; ++i) {
    w.subjects.push_back(Term::Iri("http://s/" + std::to_string(i)));
  }
  for (int i = 0; i < 4; ++i) {
    w.predicates.push_back(Term::Iri("http://p/" + std::to_string(i)));
  }
  for (int i = 0; i < 6; ++i) {
    w.objects.push_back(Term::Literal(std::to_string(i * 7)));
  }
  // Objects can also be subjects (graph edges).
  for (int i = 0; i < 3; ++i) w.objects.push_back(w.subjects[i]);

  const int n = 60 + static_cast<int>(rng->UniformInt(60));
  for (int i = 0; i < n; ++i) {
    const Term& s = w.subjects[rng->UniformInt(w.subjects.size())];
    const Term& p = w.predicates[rng->UniformInt(w.predicates.size())];
    const Term& o = w.objects[rng->UniformInt(w.objects.size())];
    w.ds.store().Add(w.ds.dict().Intern(s), w.ds.dict().Intern(p),
                     w.ds.dict().Intern(o));
  }
  w.ds.BuildEntityIndex();
  return w;
}

/// Builds a random query over variables ?v0..?v3 and world constants.
SelectQuery MakeQuery(const RandomWorld& w, Rng* rng) {
  SelectQuery q;
  const size_t num_patterns = 1 + rng->UniformInt(3);
  auto var = [&](int i) { return TermOrVar(Variable{"v" + std::to_string(i)}); };
  for (size_t i = 0; i < num_patterns; ++i) {
    TriplePatternAst tp;
    tp.subject = rng->Bernoulli(0.6)
                     ? var(static_cast<int>(rng->UniformInt(3)))
                     : TermOrVar(w.subjects[rng->UniformInt(w.subjects.size())]);
    tp.predicate =
        rng->Bernoulli(0.3)
            ? var(3)
            : TermOrVar(w.predicates[rng->UniformInt(w.predicates.size())]);
    tp.object = rng->Bernoulli(0.6)
                    ? var(static_cast<int>(rng->UniformInt(3)))
                    : TermOrVar(w.objects[rng->UniformInt(w.objects.size())]);
    q.where.push_back(std::move(tp));
  }
  if (rng->Bernoulli(0.3)) {
    FilterAst f;
    f.var = Variable{"v" + std::to_string(rng->UniformInt(3))};
    f.op = rng->Bernoulli(0.5) ? CompareOp::kNe : CompareOp::kEq;
    f.value = w.objects[rng->UniformInt(w.objects.size())];
    q.filters.push_back(std::move(f));
  }
  return q;
}

/// Naive reference: enumerate all triples for every pattern, check
/// consistency and filters at the end.
std::multiset<std::string> ReferenceEvaluate(const RandomWorld& w,
                                             const SelectQuery& q) {
  const auto all = w.ds.store().Match(rdf::TriplePattern{});
  const auto vars = q.MentionedVariables();
  std::map<std::string, Term> binding;
  std::multiset<std::string> rows;

  std::function<void(size_t)> recurse = [&](size_t pi) {
    if (pi == q.where.size()) {
      // All filters must pass (a filter on an unbound variable is inert,
      // matching the engine's semantics).
      for (const FilterAst& f : q.filters) {
        auto it = binding.find(f.var.name);
        if (it != binding.end() &&
            !CompareTerms(it->second, f.op, f.value)) {
          return;
        }
      }
      std::string row;
      for (const std::string& v : vars) {
        auto it = binding.find(v);
        row += (it == binding.end() ? Term::Literal("") : it->second)
                   .ToNTriples();
        row += '\x1f';
      }
      rows.insert(row);
      return;
    }
    const TriplePatternAst& tp = q.where[pi];
    for (const rdf::Triple& t : all) {
      const Term triple_terms[3] = {w.ds.dict().term(t.subject),
                                    w.ds.dict().term(t.predicate),
                                    w.ds.dict().term(t.object)};
      const TermOrVar* comps[3] = {&tp.subject, &tp.predicate, &tp.object};
      std::vector<std::string> bound_here;
      bool ok = true;
      for (int i = 0; i < 3 && ok; ++i) {
        if (IsVariable(*comps[i])) {
          const std::string& name = std::get<Variable>(*comps[i]).name;
          auto it = binding.find(name);
          if (it == binding.end()) {
            binding.emplace(name, triple_terms[i]);
            bound_here.push_back(name);
          } else {
            ok = (it->second == triple_terms[i]);
          }
        } else {
          ok = (std::get<Term>(*comps[i]) == triple_terms[i]);
        }
      }
      if (ok) recurse(pi + 1);
      for (const std::string& name : bound_here) binding.erase(name);
    }
  };
  recurse(0);
  return rows;
}

std::multiset<std::string> EngineRows(const RandomWorld& w,
                                      const SelectQuery& q) {
  auto result = Evaluate(q, w.ds);
  EXPECT_TRUE(result.ok()) << result.status();
  std::multiset<std::string> rows;
  if (!result.ok()) return rows;
  for (const auto& row : result->rows) {
    std::string key;
    for (const Term& t : row) {
      key += t.ToNTriples();
      key += '\x1f';
    }
    rows.insert(key);
  }
  return rows;
}

class SparqlReferenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SparqlReferenceTest, EngineAgreesWithNaiveReference) {
  Rng rng(GetParam());
  RandomWorld w = MakeWorld(&rng);
  for (int trial = 0; trial < 60; ++trial) {
    SelectQuery q = MakeQuery(w, &rng);
    const auto expected = ReferenceEvaluate(w, q);
    const auto actual = EngineRows(w, q);
    ASSERT_EQ(actual, expected) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparqlReferenceTest,
                         ::testing::Values(5, 55, 555, 5555, 55555));

}  // namespace
}  // namespace alex::sparql
