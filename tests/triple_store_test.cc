#include "rdf/triple_store.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include <atomic>

#include "common/rng.h"
#include "common/thread_pool.h"

namespace alex::rdf {
namespace {

Triple T(TermId s, TermId p, TermId o) { return Triple{s, p, o}; }

class TripleStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // s in {0,1,2}, p in {10,11}, o in {20,21,22}.
    store_.Add(T(0, 10, 20));
    store_.Add(T(0, 10, 21));
    store_.Add(T(0, 11, 22));
    store_.Add(T(1, 10, 20));
    store_.Add(T(2, 11, 21));
  }
  TripleStore store_;
};

TEST_F(TripleStoreTest, SizeDeduplicates) {
  EXPECT_EQ(store_.size(), 5u);
  store_.Add(T(0, 10, 20));  // Duplicate.
  EXPECT_EQ(store_.size(), 5u);
  store_.Add(T(3, 10, 20));
  EXPECT_EQ(store_.size(), 6u);
}

TEST_F(TripleStoreTest, Contains) {
  EXPECT_TRUE(store_.Contains(T(0, 10, 20)));
  EXPECT_FALSE(store_.Contains(T(0, 10, 22)));
}

TEST_F(TripleStoreTest, FullScan) {
  EXPECT_EQ(store_.Match(TriplePattern{}).size(), 5u);
}

TEST_F(TripleStoreTest, SubjectOnly) {
  auto r = store_.Match(TriplePattern{0, kInvalidTermId, kInvalidTermId});
  EXPECT_EQ(r.size(), 3u);
  for (const Triple& t : r) EXPECT_EQ(t.subject, 0u);
}

TEST_F(TripleStoreTest, SubjectPredicate) {
  auto r = store_.Match(TriplePattern{0, 10, kInvalidTermId});
  EXPECT_EQ(r.size(), 2u);
}

TEST_F(TripleStoreTest, ExactTriple) {
  auto r = store_.Match(TriplePattern{0, 11, 22});
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], T(0, 11, 22));
}

TEST_F(TripleStoreTest, SubjectObject) {
  auto r = store_.Match(TriplePattern{0, kInvalidTermId, 21});
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], T(0, 10, 21));
}

TEST_F(TripleStoreTest, PredicateOnly) {
  EXPECT_EQ(store_.Match(TriplePattern{kInvalidTermId, 10, kInvalidTermId})
                .size(),
            3u);
  EXPECT_EQ(store_.Match(TriplePattern{kInvalidTermId, 11, kInvalidTermId})
                .size(),
            2u);
}

TEST_F(TripleStoreTest, PredicateObject) {
  auto r = store_.Match(TriplePattern{kInvalidTermId, 10, 20});
  EXPECT_EQ(r.size(), 2u);
  for (const Triple& t : r) {
    EXPECT_EQ(t.predicate, 10u);
    EXPECT_EQ(t.object, 20u);
  }
}

TEST_F(TripleStoreTest, ObjectOnly) {
  auto r = store_.Match(TriplePattern{kInvalidTermId, kInvalidTermId, 21});
  EXPECT_EQ(r.size(), 2u);
}

TEST_F(TripleStoreTest, NoMatches) {
  EXPECT_TRUE(store_.Match(TriplePattern{9, kInvalidTermId, kInvalidTermId})
                  .empty());
  EXPECT_EQ(store_.CountMatches(TriplePattern{9, 10, 20}), 0u);
}

TEST_F(TripleStoreTest, CountMatches) {
  EXPECT_EQ(store_.CountMatches(TriplePattern{}), 5u);
  EXPECT_EQ(
      store_.CountMatches(TriplePattern{0, kInvalidTermId, kInvalidTermId}),
      3u);
}

TEST_F(TripleStoreTest, EarlyStop) {
  size_t seen = 0;
  store_.ForEachMatch(TriplePattern{}, [&seen](const Triple&) {
    ++seen;
    return seen < 2;
  });
  EXPECT_EQ(seen, 2u);
}

TEST_F(TripleStoreTest, DistinctPredicates) {
  EXPECT_EQ(store_.DistinctPredicates(), (std::vector<TermId>{10, 11}));
}

TEST_F(TripleStoreTest, DistinctSubjects) {
  EXPECT_EQ(store_.DistinctSubjects(), (std::vector<TermId>{0, 1, 2}));
}

TEST_F(TripleStoreTest, MutationAfterQueryRebuildsIndexes) {
  EXPECT_EQ(store_.size(), 5u);
  store_.Add(T(7, 10, 20));
  EXPECT_EQ(store_.CountMatches(TriplePattern{kInvalidTermId, 10, 20}), 3u);
}

TEST(TripleStoreEmptyTest, EmptyStore) {
  TripleStore store;
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.empty());
  EXPECT_TRUE(store.Match(TriplePattern{}).empty());
  EXPECT_TRUE(store.DistinctPredicates().empty());
}

/// Property: every pattern shape answered from indexes equals brute force.
class TripleStorePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TripleStorePropertyTest, MatchesAgreeWithBruteForce) {
  alex::Rng rng(GetParam());
  TripleStore store;
  std::vector<Triple> all;
  for (int i = 0; i < 400; ++i) {
    Triple t{static_cast<TermId>(rng.UniformInt(12)),
             static_cast<TermId>(rng.UniformInt(5)),
             static_cast<TermId>(rng.UniformInt(15))};
    store.Add(t);
    all.push_back(t);
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());

  for (int trial = 0; trial < 200; ++trial) {
    TriplePattern p;
    if (rng.Bernoulli(0.5)) p.subject = static_cast<TermId>(rng.UniformInt(13));
    if (rng.Bernoulli(0.5)) {
      p.predicate = static_cast<TermId>(rng.UniformInt(6));
    }
    if (rng.Bernoulli(0.5)) p.object = static_cast<TermId>(rng.UniformInt(16));

    std::vector<Triple> expected;
    for (const Triple& t : all) {
      if (p.Matches(t)) expected.push_back(t);
    }
    std::vector<Triple> actual = store.Match(p);
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected) << "trial " << trial;
  }
}


// Cold-start concurrency: many threads issue the first reads against a
// freshly mutated store, so the lazy index build races. The dirty-flag +
// mutex double-check must serialize exactly one build. Run under TSan via
// the "sanitize" label.
TEST(TripleStoreConcurrencyTest, ConcurrentColdReadsAreSafe) {
  for (int round = 0; round < 20; ++round) {
    TripleStore store;
    Rng rng(1000 + round);
    for (int i = 0; i < 500; ++i) {
      store.Add(Triple{static_cast<TermId>(rng.UniformInt(40)),
                       static_cast<TermId>(rng.UniformInt(8)),
                       static_cast<TermId>(rng.UniformInt(60))});
    }
    const size_t expected = store.Match(TriplePattern{}).size();
    // Dirty the indexes again so every reader starts cold.
    store.Add(Triple{1000, 1000, 1000});

    ThreadPool pool(8);
    std::atomic<size_t> total{0};
    std::atomic<bool> mismatch{false};
    for (int t = 0; t < 8; ++t) {
      pool.Submit([&store, &total, &mismatch, expected, t] {
        size_t seen = 0;
        TriplePattern p;
        if (t % 2 == 0) p.subject = static_cast<TermId>(t);
        store.ForEachMatch(p, [&seen](const Triple&) {
          ++seen;
          return true;
        });
        if (t % 2 != 0 && seen != expected + 1) mismatch.store(true);
        total.fetch_add(seen);
        // Mixed reads through the other virtual entry points.
        if (store.size() != expected + 1) mismatch.store(true);
        if (store.DistinctPredicates().empty()) mismatch.store(true);
      });
    }
    pool.Wait();
    EXPECT_FALSE(mismatch.load()) << "round " << round;
    EXPECT_GT(total.load(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TripleStorePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 99, 1234));

}  // namespace
}  // namespace alex::rdf
