#include "rdf/dataset.h"

#include <gtest/gtest.h>

namespace alex::rdf {
namespace {

class DatasetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_.AddLiteralTriple("http://x/e1", "http://x/name",
                         Term::Literal("Alpha"));
    ds_.AddLiteralTriple("http://x/e1", "http://x/age",
                         Term::TypedLiteral("30", std::string(kXsdInteger)));
    ds_.AddLiteralTriple("http://x/e2", "http://x/name",
                         Term::Literal("Beta"));
    ds_.AddIriTriple("http://x/e2", "http://x/knows", "http://x/e1");
  }
  Dataset ds_{"test"};
};

TEST_F(DatasetTest, NameAndCounts) {
  EXPECT_EQ(ds_.name(), "test");
  EXPECT_EQ(ds_.num_triples(), 4u);
  EXPECT_EQ(ds_.num_entities(), 2u);
}

TEST_F(DatasetTest, EntityIrisAndLookup) {
  auto e1 = ds_.FindEntityByIri("http://x/e1");
  ASSERT_TRUE(e1.has_value());
  EXPECT_EQ(ds_.entity_iri(*e1), "http://x/e1");
  EXPECT_EQ(ds_.FindEntity(ds_.entity_term(*e1)), e1);
  EXPECT_FALSE(ds_.FindEntityByIri("http://x/nope").has_value());
}

TEST_F(DatasetTest, AttributesOfEntity) {
  auto e1 = ds_.FindEntityByIri("http://x/e1");
  ASSERT_TRUE(e1.has_value());
  const auto& attrs = ds_.attributes(*e1);
  EXPECT_EQ(attrs.size(), 2u);
  auto e2 = ds_.FindEntityByIri("http://x/e2");
  ASSERT_TRUE(e2.has_value());
  EXPECT_EQ(ds_.attributes(*e2).size(), 2u);  // name + knows.
}

TEST_F(DatasetTest, LiteralSubjectsAreNotEntities) {
  // Only IRI subjects become entities; objects never do.
  for (size_t e = 0; e < ds_.num_entities(); ++e) {
    EXPECT_TRUE(ds_.dict().term(ds_.entity_term(e)).is_iri());
  }
}

TEST_F(DatasetTest, IndexRebuildsAfterMutation) {
  EXPECT_EQ(ds_.num_entities(), 2u);
  ds_.AddLiteralTriple("http://x/e3", "http://x/name",
                       Term::Literal("Gamma"));
  EXPECT_EQ(ds_.num_entities(), 3u);
  auto e3 = ds_.FindEntityByIri("http://x/e3");
  ASSERT_TRUE(e3.has_value());
  EXPECT_EQ(ds_.attributes(*e3).size(), 1u);
}

TEST_F(DatasetTest, ExplicitBuildEntityIndex) {
  ds_.BuildEntityIndex();
  EXPECT_EQ(ds_.num_entities(), 2u);
}

TEST(DatasetEmptyTest, EmptyDataset) {
  Dataset ds("empty");
  EXPECT_EQ(ds.num_entities(), 0u);
  EXPECT_EQ(ds.num_triples(), 0u);
  EXPECT_FALSE(ds.FindEntityByIri("http://x").has_value());
}

TEST(DatasetMultiValueTest, EntityWithRepeatedPredicate) {
  Dataset ds("multi");
  ds.AddLiteralTriple("http://x/e", "http://x/alias", Term::Literal("A"));
  ds.AddLiteralTriple("http://x/e", "http://x/alias", Term::Literal("B"));
  auto e = ds.FindEntityByIri("http://x/e");
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(ds.attributes(*e).size(), 2u);
}

}  // namespace
}  // namespace alex::rdf
