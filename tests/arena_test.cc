#include "exec/arena.h"

#include <cstdint>
#include <cstring>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

namespace alex::exec {
namespace {

bool IsAligned(const void* p, size_t align) {
  return reinterpret_cast<uintptr_t>(p) % align == 0;
}

TEST(ArenaAllocatorTest, AllocationsAreAlignedAndDisjoint) {
  ArenaAllocator arena;
  char* a = static_cast<char*>(arena.Allocate(13, 1));
  char* b = static_cast<char*>(arena.Allocate(16, 8));
  char* c = static_cast<char*>(arena.Allocate(64, 64));
  EXPECT_TRUE(IsAligned(b, 8));
  EXPECT_TRUE(IsAligned(c, 64));
  // Writes must not overlap: fill each block, then verify all survive.
  std::memset(a, 0xaa, 13);
  std::memset(b, 0xbb, 16);
  std::memset(c, 0xcc, 64);
  for (int i = 0; i < 13; ++i) EXPECT_EQ(static_cast<uint8_t>(a[i]), 0xaa);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(static_cast<uint8_t>(b[i]), 0xbb);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(static_cast<uint8_t>(c[i]), 0xcc);
  EXPECT_GE(arena.bytes_allocated(), 13u + 16u + 64u);
}

TEST(ArenaAllocatorTest, SequentialBumpsStayInOneChunk) {
  ArenaAllocator arena(/*chunk_bytes=*/4096);
  for (int i = 0; i < 100; ++i) arena.Allocate(8, 8);
  EXPECT_EQ(arena.num_chunks(), 1u);
  EXPECT_EQ(arena.bytes_reserved(), 4096u);
}

TEST(ArenaAllocatorTest, OverflowingAChunkAddsAnother) {
  ArenaAllocator arena(/*chunk_bytes=*/1024);
  for (int i = 0; i < 20; ++i) arena.Allocate(100, 8);
  EXPECT_GT(arena.num_chunks(), 1u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_allocated());
}

TEST(ArenaAllocatorTest, OversizeRequestGetsDedicatedChunk) {
  ArenaAllocator arena(/*chunk_bytes=*/1024);
  void* small = arena.Allocate(16, 8);
  void* big = arena.Allocate(1 << 20, 64);  // 1 MiB >> chunk size.
  ASSERT_NE(big, nullptr);
  EXPECT_TRUE(IsAligned(big, 64));
  std::memset(big, 0x5a, 1 << 20);  // The whole block must be writable.
  // The small allocation's chunk is still usable afterwards.
  void* small2 = arena.Allocate(16, 8);
  EXPECT_NE(small, small2);
  EXPECT_GE(arena.bytes_reserved(), static_cast<size_t>(1 << 20));
}

TEST(ArenaAllocatorTest, ResetRetainsChunksAndReusesMemory) {
  ArenaAllocator arena(/*chunk_bytes=*/1024);
  for (int i = 0; i < 50; ++i) arena.Allocate(64, 8);
  const size_t chunks_before = arena.num_chunks();
  const size_t reserved_before = arena.bytes_reserved();
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.num_chunks(), chunks_before);
  EXPECT_EQ(arena.bytes_reserved(), reserved_before);
  // The same workload after Reset reuses the retained chunks — the arena
  // must not grow again.
  for (int i = 0; i < 50; ++i) arena.Allocate(64, 8);
  EXPECT_EQ(arena.num_chunks(), chunks_before);
  EXPECT_EQ(arena.bytes_reserved(), reserved_before);
}

TEST(ArenaAllocatorTest, ZeroByteAllocationIsValid) {
  ArenaAllocator arena;
  void* p = arena.Allocate(0, 1);
  EXPECT_NE(p, nullptr);
}

TEST(ArenaAllocatorTest, ManyMixedAlignmentsStayAligned) {
  ArenaAllocator arena(/*chunk_bytes=*/512);
  const size_t aligns[] = {1, 2, 4, 8, 16, 32, 64};
  for (int i = 0; i < 500; ++i) {
    const size_t align = aligns[i % 7];
    void* p = arena.Allocate(static_cast<size_t>(i % 37) + 1, align);
    EXPECT_TRUE(IsAligned(p, align)) << "iteration " << i;
  }
}

// --- ArenaStl adapter -----------------------------------------------------

TEST(ArenaStlTest, VectorUsesArena) {
  ArenaAllocator arena;
  std::vector<int, ArenaStl<int>> v{ArenaStl<int>(&arena)};
  for (int i = 0; i < 10000; ++i) v.push_back(i);
  EXPECT_GT(arena.bytes_allocated(), 10000 * sizeof(int) / 2);
  for (int i = 0; i < 10000; ++i) ASSERT_EQ(v[i], i);
}

TEST(ArenaStlTest, NullArenaFallsBackToHeap) {
  // The legacy path: same container type, no arena behind it.
  std::vector<int, ArenaStl<int>> v;  // Default allocator = heap-backed.
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 1000u);
  EXPECT_EQ(v.get_allocator().arena(), nullptr);
}

TEST(ArenaStlTest, UnorderedContainersUseArena) {
  ArenaAllocator arena;
  std::unordered_set<uint64_t, std::hash<uint64_t>, std::equal_to<uint64_t>,
                     ArenaStl<uint64_t>>
      set(/*bucket_count=*/0, std::hash<uint64_t>(), std::equal_to<uint64_t>(),
          ArenaStl<uint64_t>(&arena));
  std::unordered_map<uint64_t, uint64_t, std::hash<uint64_t>,
                     std::equal_to<uint64_t>,
                     ArenaStl<std::pair<const uint64_t, uint64_t>>>
      map(/*bucket_count=*/0, std::hash<uint64_t>(), std::equal_to<uint64_t>(),
          ArenaStl<std::pair<const uint64_t, uint64_t>>(&arena));
  for (uint64_t i = 0; i < 5000; ++i) {
    set.insert(i * 2654435761u);
    map[i] = i * i;
  }
  EXPECT_EQ(set.size(), 5000u);
  EXPECT_EQ(map.size(), 5000u);
  for (uint64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(set.count(i * 2654435761u));
    ASSERT_EQ(map[i], i * i);
  }
  EXPECT_GT(arena.bytes_allocated(), 5000u * 2 * sizeof(uint64_t));
}

TEST(ArenaStlTest, AllocatorEqualityFollowsArenaIdentity) {
  ArenaAllocator a, b;
  ArenaStl<int> on_a(&a), on_a2(&a), on_b(&b), heap1, heap2;
  EXPECT_EQ(on_a, on_a2);
  EXPECT_NE(on_a, on_b);
  EXPECT_EQ(heap1, heap2);
  EXPECT_NE(on_a, heap1);
  // Rebinding preserves the arena.
  ArenaStl<double> rebound(on_a);
  EXPECT_EQ(rebound.arena(), &a);
}

TEST(ArenaStlTest, NonTrivialElementsDestructCorrectly) {
  // std::string elements own heap storage even when their container nodes
  // live in the arena; container destruction must still run element
  // destructors (deallocate being a no-op is orthogonal).
  ArenaAllocator arena;
  {
    std::vector<std::string, ArenaStl<std::string>> v{
        ArenaStl<std::string>(&arena)};
    for (int i = 0; i < 100; ++i) {
      v.emplace_back("string value long enough to defeat SSO #" +
                     std::to_string(i));
    }
  }  // ASan would flag leaked element storage here.
  SUCCEED();
}

TEST(ArenaStlTest, MoveAssignBetweenArenasKeepsContentsValid) {
  ArenaAllocator a, b;
  std::vector<int, ArenaStl<int>> va{ArenaStl<int>(&a)};
  std::vector<int, ArenaStl<int>> vb{ArenaStl<int>(&b)};
  for (int i = 0; i < 100; ++i) va.push_back(i);
  // propagate_on_container_move_assignment: vb adopts va's allocator and
  // buffer; the contents must survive and live in arena a.
  vb = std::move(va);
  ASSERT_EQ(vb.size(), 100u);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(vb[i], i);
  EXPECT_EQ(vb.get_allocator().arena(), &a);
}

}  // namespace
}  // namespace alex::exec
