#include "rdf/ntriples.h"

#include <sstream>

#include <gtest/gtest.h>

namespace alex::rdf {
namespace {

TEST(ParseTermTest, Iri) {
  size_t pos = 0;
  auto r = ParseNTriplesTerm("<http://x/a> rest", &pos);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Term::Iri("http://x/a"));
  EXPECT_EQ(pos, 13u);  // Past IRI and the following space.
}

TEST(ParseTermTest, PlainLiteral) {
  size_t pos = 0;
  auto r = ParseNTriplesTerm("\"hello world\"", &pos);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Term::Literal("hello world"));
}

TEST(ParseTermTest, LiteralEscapes) {
  size_t pos = 0;
  auto r = ParseNTriplesTerm(R"("a\"b\\c\nd\te\rf")", &pos);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->value, "a\"b\\c\nd\te\rf");
}

TEST(ParseTermTest, TypedLiteral) {
  size_t pos = 0;
  auto r = ParseNTriplesTerm("\"3\"^^<http://dt>", &pos);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->datatype, "http://dt");
}

TEST(ParseTermTest, LangLiteral) {
  size_t pos = 0;
  auto r = ParseNTriplesTerm("\"hi\"@en-US", &pos);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->language, "en-US");
}

TEST(ParseTermTest, BlankNode) {
  size_t pos = 0;
  auto r = ParseNTriplesTerm("_:b42 .", &pos);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Term::Blank("b42"));
}

TEST(ParseTermTest, Errors) {
  size_t pos = 0;
  EXPECT_FALSE(ParseNTriplesTerm("<unterminated", &pos).ok());
  pos = 0;
  EXPECT_FALSE(ParseNTriplesTerm("\"unterminated", &pos).ok());
  pos = 0;
  EXPECT_FALSE(ParseNTriplesTerm("\"bad\\escape\\q\"", &pos).ok());
  pos = 0;
  EXPECT_FALSE(ParseNTriplesTerm("", &pos).ok());
  pos = 0;
  EXPECT_FALSE(ParseNTriplesTerm("%", &pos).ok());
}

TEST(ParseLineTest, FullTriple) {
  auto r = ParseNTriplesLine("<http://s> <http://p> \"o\" .");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->subject, Term::Iri("http://s"));
  EXPECT_EQ(r->predicate, Term::Iri("http://p"));
  EXPECT_EQ(r->object, Term::Literal("o"));
}

TEST(ParseLineTest, CommentAndBlankAreSkipMarkers) {
  EXPECT_EQ(ParseNTriplesLine("# a comment").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ParseNTriplesLine("   ").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(ParseNTriplesLine("").status().code(), StatusCode::kNotFound);
}

TEST(ParseLineTest, MissingDotFails) {
  EXPECT_FALSE(ParseNTriplesLine("<http://s> <http://p> \"o\"").ok());
}

TEST(ParseLineTest, LiteralPredicateFails) {
  EXPECT_FALSE(ParseNTriplesLine("<http://s> \"p\" \"o\" .").ok());
}

TEST(ReadWriteTest, RoundTrip) {
  const char* doc =
      "<http://s1> <http://p> \"v1\" .\n"
      "# comment\n"
      "<http://s1> <http://p> \"3\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n"
      "<http://s2> <http://q> <http://s1> .\n"
      "_:b <http://p> \"x\"@en .\n";
  Dictionary dict;
  TripleStore store;
  std::istringstream in(doc);
  ASSERT_TRUE(ReadNTriples(in, &dict, &store).ok());
  EXPECT_EQ(store.size(), 4u);

  std::ostringstream out;
  ASSERT_TRUE(WriteNTriples(store, dict, out).ok());

  Dictionary dict2;
  TripleStore store2;
  std::istringstream in2(out.str());
  ASSERT_TRUE(ReadNTriples(in2, &dict2, &store2).ok());
  EXPECT_EQ(store2.size(), 4u);

  // Same logical content: every triple of the first store exists in the
  // second (compare as term triples).
  store.ForEachMatch(TriplePattern{}, [&](const Triple& t) {
    auto s = dict2.Lookup(dict.term(t.subject));
    auto p = dict2.Lookup(dict.term(t.predicate));
    auto o = dict2.Lookup(dict.term(t.object));
    EXPECT_TRUE(s && p && o);
    if (s && p && o) EXPECT_TRUE(store2.Contains(Triple{*s, *p, *o}));
    return true;
  });
}

TEST(ReadWriteTest, MalformedLineReportsLineNumber) {
  Dictionary dict;
  TripleStore store;
  std::istringstream in("<http://s> <http://p> \"ok\" .\nbogus line\n");
  Status s = ReadNTriples(in, &dict, &store);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("line 2"), std::string::npos);
}

TEST(ReadWriteTest, EscapeRoundTrip) {
  Dictionary dict;
  TripleStore store;
  store.Add(dict.InternIri("http://s"), dict.InternIri("http://p"),
            dict.Intern(Term::Literal("line1\nline2\t\"quoted\"\\")));
  std::ostringstream out;
  ASSERT_TRUE(WriteNTriples(store, dict, out).ok());
  Dictionary dict2;
  TripleStore store2;
  std::istringstream in(out.str());
  ASSERT_TRUE(ReadNTriples(in, &dict2, &store2).ok());
  EXPECT_TRUE(
      dict2.Lookup(Term::Literal("line1\nline2\t\"quoted\"\\")).has_value());
}

}  // namespace
}  // namespace alex::rdf
