#include "core/feature.h"

#include <gtest/gtest.h>

namespace alex::core {
namespace {

using rdf::Term;

TEST(FeatureKeyTest, PackUnpack) {
  const FeatureKey key = MakeFeatureKey(7, 9);
  EXPECT_EQ(FeatureLeftPred(key), 7u);
  EXPECT_EQ(FeatureRightPred(key), 9u);
  EXPECT_NE(MakeFeatureKey(7, 9), MakeFeatureKey(9, 7));
}

class FeatureSetTest : public ::testing::Test {
 protected:
  rdf::EntityId AddEntity(rdf::Dataset* ds, const std::string& iri,
                          const std::vector<std::pair<std::string, Term>>&
                              attrs) {
    for (const auto& [pred, value] : attrs) {
      ds->AddLiteralTriple(iri, pred, value);
    }
    ds->BuildEntityIndex();
    return *ds->FindEntityByIri(iri);
  }

  rdf::TermId Pred(const rdf::Dataset& ds, const std::string& iri) {
    return *ds.dict().Lookup(Term::Iri(iri));
  }

  rdf::Dataset left_{"l"};
  rdf::Dataset right_{"r"};
};

TEST_F(FeatureSetTest, MatchingAttributesProduceFeatures) {
  auto le = AddEntity(&left_, "http://l/e",
                      {{"http://l/name", Term::Literal("Alice Arden")},
                       {"http://l/birth", Term::Literal("1980-01-01")}});
  auto re = AddEntity(&right_, "http://r/e",
                      {{"http://r/label", Term::Literal("Alice Arden")},
                       {"http://r/dob", Term::Literal("1980-01-01")}});
  FeatureSet fs = ComputeFeatureSet(left_, le, right_, re, 0.3);
  ASSERT_EQ(fs.size(), 2u);
  const FeatureKey name_key =
      MakeFeatureKey(Pred(left_, "http://l/name"), Pred(right_, "http://r/label"));
  const FeatureKey birth_key =
      MakeFeatureKey(Pred(left_, "http://l/birth"), Pred(right_, "http://r/dob"));
  bool saw_name = false, saw_birth = false;
  for (const FeatureValue& f : fs) {
    if (f.key == name_key) {
      saw_name = true;
      EXPECT_DOUBLE_EQ(f.score, 1.0);
    }
    if (f.key == birth_key) {
      saw_birth = true;
      EXPECT_DOUBLE_EQ(f.score, 1.0);
    }
  }
  EXPECT_TRUE(saw_name);
  EXPECT_TRUE(saw_birth);
}

TEST_F(FeatureSetTest, ThetaFilterDropsWeakFeatures) {
  auto le = AddEntity(&left_, "http://l/e",
                      {{"http://l/name", Term::Literal("Completely")}});
  auto re = AddEntity(&right_, "http://r/e",
                      {{"http://r/label", Term::Literal("Different")}});
  EXPECT_TRUE(ComputeFeatureSet(left_, le, right_, re, 0.3).empty());
  // With theta 0 even a zero-score max is dropped only if exactly 0;
  // unrelated strings score ~0 so the set may be empty or tiny.
  FeatureSet loose = ComputeFeatureSet(left_, le, right_, re, 0.0);
  for (const FeatureValue& f : loose) EXPECT_GE(f.score, 0.0);
}

TEST_F(FeatureSetTest, ReducesAlongLargerSide) {
  // Left has 3 attributes, right has 1: one feature per left attribute that
  // clears theta, each paired with the single right attribute.
  auto le = AddEntity(&left_, "http://l/e",
                      {{"http://l/a", Term::Literal("alpha beta")},
                       {"http://l/b", Term::Literal("alpha")},
                       {"http://l/c", Term::Literal("unrelatedxyz")}});
  auto re = AddEntity(&right_, "http://r/e",
                      {{"http://r/x", Term::Literal("alpha beta")}});
  FeatureSet fs = ComputeFeatureSet(left_, le, right_, re, 0.3);
  // l/a matches 1.0; l/b matches 0.5 (token jaccard); l/c fails theta.
  ASSERT_EQ(fs.size(), 2u);
  for (const FeatureValue& f : fs) {
    EXPECT_EQ(FeatureRightPred(f.key), Pred(right_, "http://r/x"));
  }
}

TEST_F(FeatureSetTest, ReducesPerRightAttributeWhenRightLarger) {
  auto le = AddEntity(&left_, "http://l/e",
                      {{"http://l/a", Term::Literal("alpha beta")}});
  auto re = AddEntity(&right_, "http://r/e",
                      {{"http://r/x", Term::Literal("alpha beta")},
                       {"http://r/y", Term::Literal("beta alpha")},
                       {"http://r/z", Term::Literal("nomatchatall")}});
  FeatureSet fs = ComputeFeatureSet(left_, le, right_, re, 0.3);
  ASSERT_EQ(fs.size(), 2u);  // x and y match (reorder scores 1.0); z fails.
  for (const FeatureValue& f : fs) {
    EXPECT_EQ(FeatureLeftPred(f.key), Pred(left_, "http://l/a"));
    EXPECT_DOUBLE_EQ(f.score, 1.0);
  }
}

TEST_F(FeatureSetTest, DuplicatePredicatePairsKeepMaxScore) {
  // Two values for the same predicate: the feature appears once with the
  // best score.
  auto le = AddEntity(&left_, "http://l/e",
                      {{"http://l/alias", Term::Literal("alpha")},
                       {"http://l/alias", Term::Literal("alpha beta")}});
  auto re = AddEntity(&right_, "http://r/e",
                      {{"http://r/name", Term::Literal("alpha beta")},
                       {"http://r/other", Term::Literal("zzz qqq")}});
  FeatureSet fs = ComputeFeatureSet(left_, le, right_, re, 0.3);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_DOUBLE_EQ(fs[0].score, 1.0);
}

TEST_F(FeatureSetTest, EmptyEntitiesYieldEmptySet) {
  auto le = AddEntity(&left_, "http://l/e",
                      {{"http://l/a", Term::Literal("x")}});
  rdf::Dataset empty{"empty"};
  empty.AddLiteralTriple("http://e/only", "http://e/p", Term::Literal("y"));
  empty.BuildEntityIndex();
  // Feature set against an entity with dissimilar single attribute.
  FeatureSet fs = ComputeFeatureSet(
      left_, le, empty, *empty.FindEntityByIri("http://e/only"), 0.3);
  EXPECT_TRUE(fs.empty());
}

TEST_F(FeatureSetTest, SortedByKey) {
  auto le = AddEntity(&left_, "http://l/e",
                      {{"http://l/a", Term::Literal("one two")},
                       {"http://l/b", Term::Literal("three four")}});
  auto re = AddEntity(&right_, "http://r/e",
                      {{"http://r/x", Term::Literal("one two")},
                       {"http://r/y", Term::Literal("three four")}});
  FeatureSet fs = ComputeFeatureSet(left_, le, right_, re, 0.3);
  for (size_t i = 1; i < fs.size(); ++i) {
    EXPECT_LT(fs[i - 1].key, fs[i].key);
  }
}

TEST_F(FeatureSetTest, FeatureNameRendersLocalNames) {
  auto le = AddEntity(&left_, "http://l/ont/name",
                      {{"http://l/ont/name", Term::Literal("v")}});
  (void)le;
  auto re = AddEntity(&right_, "http://r/ont/label",
                      {{"http://r/ont/label", Term::Literal("v")}});
  (void)re;
  const FeatureKey key = MakeFeatureKey(Pred(left_, "http://l/ont/name"),
                                        Pred(right_, "http://r/ont/label"));
  EXPECT_EQ(FeatureName(left_, right_, key), "(name, label)");
}

}  // namespace
}  // namespace alex::core
