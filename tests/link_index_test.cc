#include "federation/link_index.h"

#include <gtest/gtest.h>

namespace alex::fed {
namespace {

TEST(LinkIndexTest, AddAndContains) {
  LinkIndex index;
  EXPECT_TRUE(index.Add("http://a/1", "http://b/1"));
  EXPECT_TRUE(index.Contains("http://a/1", "http://b/1"));
  EXPECT_FALSE(index.Contains("http://b/1", "http://a/1"));  // Directional.
  EXPECT_EQ(index.size(), 1u);
}

TEST(LinkIndexTest, DuplicateAddIgnored) {
  LinkIndex index;
  EXPECT_TRUE(index.Add("a", "b"));
  EXPECT_FALSE(index.Add("a", "b"));
  EXPECT_EQ(index.size(), 1u);
}

TEST(LinkIndexTest, BidirectionalLookup) {
  LinkIndex index;
  index.Add("a1", "b1");
  index.Add("a1", "b2");
  index.Add("a2", "b1");
  EXPECT_EQ(index.RightsFor("a1"), (std::vector<std::string>{"b1", "b2"}));
  EXPECT_EQ(index.LeftsFor("b1"), (std::vector<std::string>{"a1", "a2"}));
  EXPECT_TRUE(index.RightsFor("zz").empty());
  EXPECT_TRUE(index.LeftsFor("zz").empty());
}

TEST(LinkIndexTest, Remove) {
  LinkIndex index;
  index.Add("a", "b");
  index.Add("a", "c");
  EXPECT_TRUE(index.Remove("a", "b"));
  EXPECT_FALSE(index.Contains("a", "b"));
  EXPECT_TRUE(index.Contains("a", "c"));
  EXPECT_EQ(index.size(), 1u);
  EXPECT_TRUE(index.LeftsFor("b").empty());
  EXPECT_FALSE(index.Remove("a", "b"));  // Already gone.
  EXPECT_FALSE(index.Remove("zz", "b"));
}

TEST(LinkIndexTest, RemoveLastCleansBothDirections) {
  LinkIndex index;
  index.Add("a", "b");
  index.Remove("a", "b");
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(index.RightsFor("a").empty());
  EXPECT_TRUE(index.AllLinks().empty());
}

TEST(LinkIndexTest, AllLinksSorted) {
  LinkIndex index;
  index.Add("b", "y");
  index.Add("a", "z");
  index.Add("a", "x");
  auto links = index.AllLinks();
  ASSERT_EQ(links.size(), 3u);
  EXPECT_EQ(links[0], (SameAsLink{"a", "x"}));
  EXPECT_EQ(links[1], (SameAsLink{"a", "z"}));
  EXPECT_EQ(links[2], (SameAsLink{"b", "y"}));
}

}  // namespace
}  // namespace alex::fed
