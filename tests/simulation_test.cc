#include "simulation/simulation.h"

#include <sstream>

#include <gtest/gtest.h>

#include "datagen/scenarios.h"
#include "simulation/report.h"

namespace alex::simulation {
namespace {

SimulationConfig SmallConfig() {
  SimulationConfig config;
  config.scenario.name = "unit";
  config.scenario.seed = 33;
  config.scenario.num_shared = 40;
  config.scenario.num_left_only = 30;
  config.scenario.num_right_only = 15;
  config.scenario.domains = {"person"};
  config.scenario.value_noise = 0.4;
  config.scenario.ambiguity = 0.2;
  config.alex.episode_size = 50;
  config.alex.num_partitions = 3;
  config.alex.num_threads = 2;
  config.alex.max_episodes = 30;
  return config;
}

TEST(SimulationTest, RunProducesEpisodeSeries) {
  Simulation sim(SmallConfig());
  RunResult result = sim.Run();
  ASSERT_GE(result.episodes.size(), 2u);
  EXPECT_EQ(result.episodes[0].episode, 0u);  // Initial PARIS state.
  EXPECT_EQ(result.episodes[1].episode, 1u);
  EXPECT_EQ(result.scenario_name, "unit");
  EXPECT_GT(result.initial_links, 0u);
  EXPECT_GT(result.total_seconds, 0.0);
}

TEST(SimulationTest, QualityImproves) {
  Simulation sim(SmallConfig());
  RunResult result = sim.Run();
  const double initial_f = result.episodes.front().metrics.f_measure;
  const double final_f = result.final_episode().metrics.f_measure;
  EXPECT_GT(final_f, initial_f);
  EXPECT_GT(final_f, 0.7);
}

TEST(SimulationTest, DiscoversNewLinks) {
  Simulation sim(SmallConfig());
  RunResult result = sim.Run();
  EXPECT_GT(result.new_links_discovered, 0u);
}

TEST(SimulationTest, DeterministicForSameConfig) {
  RunResult a = Simulation(SmallConfig()).Run();
  RunResult b = Simulation(SmallConfig()).Run();
  ASSERT_EQ(a.episodes.size(), b.episodes.size());
  for (size_t i = 0; i < a.episodes.size(); ++i) {
    EXPECT_EQ(a.episodes[i].metrics.candidates,
              b.episodes[i].metrics.candidates);
    EXPECT_DOUBLE_EQ(a.episodes[i].metrics.f_measure,
                     b.episodes[i].metrics.f_measure);
  }
  EXPECT_EQ(a.converged_episode, b.converged_episode);
}

TEST(SimulationTest, ObserverSeesEveryEpisode) {
  Simulation sim(SmallConfig());
  size_t calls = 0;
  sim.set_observer([&calls](size_t episode, const core::PartitionedAlex&) {
    ++calls;
    EXPECT_GT(episode, 0u);
  });
  RunResult result = sim.Run();
  EXPECT_EQ(calls, result.episodes.size() - 1);
}

TEST(SimulationTest, PartitionTruthSplitsGroundTruth) {
  SimulationConfig config = SmallConfig();
  Simulation sim(config);
  sim.Run();
  core::PartitionedAlex alex(&sim.data().left, &sim.data().right, config.alex);
  size_t total = 0;
  for (size_t p = 0; p < alex.num_partitions(); ++p) {
    total += Simulation::PartitionTruth(sim.data().truth, alex, p).size();
  }
  EXPECT_EQ(total, sim.data().truth.size());
}

TEST(SimulationTest, IncorrectFeedbackDegradesGracefully) {
  SimulationConfig clean = SmallConfig();
  clean.alex.max_episodes = 10;
  SimulationConfig noisy = clean;
  noisy.feedback_error_rate = 0.10;
  // A correct link must survive one mistaken rejection (Appendix C setup).
  noisy.alex.blacklist_threshold = 3;
  RunResult a = Simulation(clean).Run();
  RunResult b = Simulation(noisy).Run();
  // Appendix C: quality with 10% incorrect feedback stays close to clean.
  EXPECT_GT(b.final_episode().metrics.f_measure, 0.5);
  EXPECT_GE(a.final_episode().metrics.f_measure,
            b.final_episode().metrics.f_measure - 0.2);
}

TEST(SimulationTest, ConvergenceEpisodeConsistentWithSeries) {
  RunResult result = Simulation(SmallConfig()).Run();
  if (result.converged_episode > 0) {
    EXPECT_EQ(result.final_episode().links_changed, 0u);
    EXPECT_EQ(result.final_episode().episode, result.converged_episode);
  }
  if (result.relaxed_episode > 0 && result.converged_episode > 0) {
    EXPECT_LE(result.relaxed_episode, result.converged_episode);
  }
}

TEST(ReportTest, PrintEpisodeSeriesFormats) {
  RunResult result = Simulation(SmallConfig()).Run();
  std::ostringstream os;
  PrintEpisodeSeries(result, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("precision"), std::string::npos);
  EXPECT_NE(text.find("unit"), std::string::npos);
  std::ostringstream summary;
  PrintRunSummary(result, summary);
  EXPECT_NE(summary.str().find("scenario=unit"), std::string::npos);
  EXPECT_NE(summary.str().find("final_F="), std::string::npos);
}

TEST(EpisodeRecordTest, NegativeFeedbackPercent) {
  EpisodeRecord r;
  EXPECT_DOUBLE_EQ(r.NegativeFeedbackPercent(), 0.0);
  r.positive_feedback = 7;
  r.negative_feedback = 3;
  EXPECT_DOUBLE_EQ(r.NegativeFeedbackPercent(), 30.0);
}

}  // namespace
}  // namespace alex::simulation
