#include "simulation/query_workload.h"

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "federation/federated_engine.h"
#include "obs/metrics.h"
#include "sparql/parser.h"

namespace alex::simulation {
namespace {

datagen::GeneratedPair MakePair() {
  datagen::ScenarioConfig config;
  config.seed = 808;
  config.num_shared = 30;
  config.num_left_only = 10;
  config.num_right_only = 5;
  config.domains = {"person"};
  config.value_noise = 0.2;
  return datagen::GenerateScenario(config);
}

TEST(QueryWorkloadTest, GeneratesParseableQueries) {
  datagen::GeneratedPair pair = MakePair();
  FederatedWorkload workload = MakeFederatedWorkload(pair, 20, 7);
  EXPECT_EQ(workload.queries.size(), 20u);
  EXPECT_EQ(workload.subjects.size(), workload.queries.size());
  for (const std::string& q : workload.queries) {
    EXPECT_TRUE(sparql::ParseQuery(q).ok()) << q;
  }
}

TEST(QueryWorkloadTest, CappedByGroundTruthSize) {
  datagen::GeneratedPair pair = MakePair();
  FederatedWorkload workload = MakeFederatedWorkload(pair, 1000, 7);
  EXPECT_LE(workload.queries.size(), pair.truth.size());
  EXPECT_GT(workload.queries.size(), 0u);
}

TEST(QueryWorkloadTest, DeterministicForSeed) {
  datagen::GeneratedPair pair = MakePair();
  FederatedWorkload a = MakeFederatedWorkload(pair, 10, 42);
  FederatedWorkload b = MakeFederatedWorkload(pair, 10, 42);
  EXPECT_EQ(a.queries, b.queries);
  FederatedWorkload c = MakeFederatedWorkload(pair, 10, 43);
  EXPECT_NE(a.queries, c.queries);
}

TEST(QueryWorkloadTest, QueriesNeedLinksToAnswer) {
  datagen::GeneratedPair pair = MakePair();
  FederatedWorkload workload = MakeFederatedWorkload(pair, 10, 7);

  fed::Endpoint left(&pair.left);
  fed::Endpoint right(&pair.right);

  fed::LinkIndex no_links;
  fed::FederatedEngine unlinked(&left, &right, &no_links);
  fed::LinkIndex all_links = LinksFromPairs(pair, pair.truth.AsVector());
  fed::FederatedEngine linked(&left, &right, &all_links);

  size_t answered_without = 0;
  size_t answered_with = 0;
  for (const std::string& q : workload.queries) {
    auto a = unlinked.ExecuteText(q);
    auto b = linked.ExecuteText(q);
    ASSERT_TRUE(a.ok() && b.ok());
    if (a->NumRows() > 0) ++answered_without;
    if (b->NumRows() > 0) ++answered_with;
  }
  EXPECT_EQ(answered_without, 0u);  // No links, no cross-dataset answers.
  EXPECT_EQ(answered_with, workload.queries.size());
}

// Regression for the pool-path counter: fed.parallel_queries must advance
// once per query actually executed on the pool, not be bulk-added up front
// — a workload that partially fails (or is truncated) must not inflate it.
TEST(QueryWorkloadTest, ParallelQueriesCounterMatchesExecutedQueries) {
  datagen::GeneratedPair pair = MakePair();
  pair.left.store().EnsureIndexes();
  pair.right.store().EnsureIndexes();
  FederatedWorkload workload = MakeFederatedWorkload(pair, 12, 7);

  fed::Endpoint left(&pair.left);
  fed::Endpoint right(&pair.right);
  fed::LinkIndex links = LinksFromPairs(pair, pair.truth.AsVector());
  fed::FederatedEngine engine(&left, &right, &links);

  obs::Counter& parallel_queries =
      obs::MetricsRegistry::Global().counter("fed.parallel_queries");
  const uint64_t before = parallel_queries.Value();

  ThreadPool pool(3);
  WorkloadExecOptions options;
  options.pool = &pool;
  const WorkloadRunStats stats =
      ExecuteFederatedWorkload(engine, workload, options);

  EXPECT_EQ(stats.total, workload.queries.size());
  EXPECT_EQ(stats.answered, stats.total);  // Healthy stack, all links.
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(parallel_queries.Value() - before,
            static_cast<uint64_t>(stats.total));
}

TEST(LinksFromPairsTest, BuildsIriIndex) {
  datagen::GeneratedPair pair = MakePair();
  auto keys = pair.truth.AsVector();
  fed::LinkIndex index = LinksFromPairs(pair, keys);
  EXPECT_EQ(index.size(), keys.size());
  const feedback::PairKey key = keys.front();
  EXPECT_TRUE(index.Contains(
      pair.left.entity_iri(feedback::PairLeft(key)),
      pair.right.entity_iri(feedback::PairRight(key))));
}

}  // namespace
}  // namespace alex::simulation
