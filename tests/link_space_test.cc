#include "core/link_space.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "datagen/generator.h"

namespace alex::core {
namespace {

using feedback::PackPair;
using rdf::Term;

class LinkSpaceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 8; ++i) {
      const std::string name = "Entity Number" + std::to_string(i);
      left_.AddLiteralTriple("http://l/e" + std::to_string(i),
                             "http://l/name", Term::Literal(name));
      right_.AddLiteralTriple("http://r/e" + std::to_string(i),
                              "http://r/label", Term::Literal(name));
    }
    // A right entity with no counterpart.
    right_.AddLiteralTriple("http://r/odd", "http://r/label",
                            Term::Literal("Totally Unique Zorp"));
    left_.BuildEntityIndex();
    right_.BuildEntityIndex();
    all_left_.clear();
    for (rdf::EntityId e = 0; e < left_.num_entities(); ++e) {
      all_left_.push_back(e);
    }
  }

  rdf::Dataset left_{"l"};
  rdf::Dataset right_{"r"};
  std::vector<rdf::EntityId> all_left_;
};

TEST_F(LinkSpaceTest, ContainsMatchingPairs) {
  LinkSpace space;
  space.Build(left_, right_, all_left_, 0.3, 20000);
  for (int i = 0; i < 8; ++i) {
    auto l = left_.FindEntityByIri("http://l/e" + std::to_string(i));
    auto r = right_.FindEntityByIri("http://r/e" + std::to_string(i));
    ASSERT_TRUE(l && r);
    EXPECT_TRUE(space.Contains(PackPair(*l, *r))) << i;
  }
}

TEST_F(LinkSpaceTest, FeatureSetAccessible) {
  LinkSpace space;
  space.Build(left_, right_, all_left_, 0.3, 20000);
  auto l = left_.FindEntityByIri("http://l/e0");
  auto r = right_.FindEntityByIri("http://r/e0");
  const FeatureSet* fs = space.FeaturesOf(PackPair(*l, *r));
  ASSERT_NE(fs, nullptr);
  ASSERT_EQ(fs->size(), 1u);
  EXPECT_DOUBLE_EQ((*fs)[0].score, 1.0);
  EXPECT_EQ(space.FeaturesOf(PackPair(999, 999)), nullptr);
}

TEST_F(LinkSpaceTest, BandQueryReturnsPairsInRange) {
  LinkSpace space;
  space.Build(left_, right_, all_left_, 0.3, 20000);
  auto l = left_.FindEntityByIri("http://l/e0");
  auto r = right_.FindEntityByIri("http://r/e0");
  const FeatureSet* fs = space.FeaturesOf(PackPair(*l, *r));
  ASSERT_NE(fs, nullptr);
  const FeatureKey feature = (*fs)[0].key;

  std::vector<feedback::PairKey> found;
  space.BandQuery(feature, 0.95, 1.0, &found);
  // All 8 exact-name pairs have score 1.0 on (name, label); cross pairs
  // ("Entity Number1" vs "Entity Number2") share the token "entity"
  // and "number?" prefixes, scoring below 0.95.
  EXPECT_EQ(found.size(), 8u);

  found.clear();
  space.BandQuery(feature, 0.0, 1.0, &found);
  const size_t all_on_feature = found.size();
  EXPECT_GE(all_on_feature, 8u);

  found.clear();
  space.BandQuery(feature, 1.1, 2.0, &found);
  EXPECT_TRUE(found.empty());

  found.clear();
  space.BandQuery(0xdeadbeefULL, 0.0, 1.0, &found);  // Unknown feature.
  EXPECT_TRUE(found.empty());
}

TEST_F(LinkSpaceTest, BandQueryMatchesBruteForce) {
  LinkSpace space;
  space.Build(left_, right_, all_left_, 0.3, 20000);
  auto l = left_.FindEntityByIri("http://l/e0");
  auto r = right_.FindEntityByIri("http://r/e0");
  const FeatureKey feature =
      (*space.FeaturesOf(PackPair(*l, *r)))[0].key;
  for (double lo : {0.0, 0.3, 0.5, 0.9, 0.99}) {
    const double hi = lo + 0.3;
    std::vector<feedback::PairKey> banded;
    space.BandQuery(feature, lo, hi, &banded);
    std::vector<feedback::PairKey> brute;
    for (feedback::PairKey pair : space.pairs()) {
      const FeatureSet* fs = space.FeaturesOf(pair);
      for (const FeatureValue& f : *fs) {
        if (f.key == feature && static_cast<float>(f.score) >= lo &&
            static_cast<float>(f.score) <= hi) {
          brute.push_back(pair);
        }
      }
    }
    std::sort(banded.begin(), banded.end());
    std::sort(brute.begin(), brute.end());
    EXPECT_EQ(banded, brute) << "lo=" << lo;
  }
}

TEST_F(LinkSpaceTest, BandQueryBoundsAreNotWidenedByFloatRounding) {
  LinkSpace space;
  space.Build(left_, right_, all_left_, 0.3, 20000);
  auto l = left_.FindEntityByIri("http://l/e0");
  auto r = right_.FindEntityByIri("http://r/e0");
  const FeatureKey feature = (*space.FeaturesOf(PackPair(*l, *r)))[0].key;

  // The 8 exact-name pairs score exactly 1.0. A lower bound just above 1.0
  // truncates to 1.0f; comparing in float would admit all of them even
  // though every score lies below the requested band.
  std::vector<feedback::PairKey> found;
  space.BandQuery(feature, 1.0 + 1e-12, 2.0, &found);
  EXPECT_TRUE(found.empty());

  // Symmetrically, an upper bound just below 1.0 rounds up to 1.0f; float
  // comparison would keep the score-1.0 pairs inside the band.
  found.clear();
  space.BandQuery(feature, 0.999, 1.0 - 1e-12, &found);
  for (feedback::PairKey pair : found) {
    const FeatureSet* fs = space.FeaturesOf(pair);
    for (const FeatureValue& f : *fs) {
      if (f.key == feature) EXPECT_LT(static_cast<float>(f.score), 1.0f);
    }
  }

  // Inclusive bounds still admit exact matches.
  found.clear();
  space.BandQuery(feature, 1.0, 1.0, &found);
  EXPECT_EQ(found.size(), 8u);
}

TEST_F(LinkSpaceTest, StatsAreConsistent) {
  LinkSpace space;
  space.Build(left_, right_, all_left_, 0.3, 20000);
  const LinkSpace::BuildStats& stats = space.stats();
  EXPECT_EQ(stats.total_possible, 8u * 9u);
  EXPECT_EQ(stats.kept_pairs, space.size());
  EXPECT_LE(stats.kept_pairs, stats.candidate_pairs);
  EXPECT_LE(stats.candidate_pairs, stats.total_possible);
  EXPECT_GT(stats.features_indexed, 0u);
}

TEST_F(LinkSpaceTest, PartitionSubsetRestrictsLeftSide) {
  auto l3 = left_.FindEntityByIri("http://l/e3");
  LinkSpace space;
  space.Build(left_, right_, {*l3}, 0.3, 20000);
  auto r3 = right_.FindEntityByIri("http://r/e3");
  EXPECT_TRUE(space.Contains(PackPair(*l3, *r3)));
  auto l0 = left_.FindEntityByIri("http://l/e0");
  auto r0 = right_.FindEntityByIri("http://r/e0");
  EXPECT_FALSE(space.Contains(PackPair(*l0, *r0)));
}

TEST_F(LinkSpaceTest, BlockCapSkipsStopValues) {
  // With a tiny cap, the shared tokens ("entity", "number") exceed the cap
  // and the exact full-value blocks (1x1 pairs) still qualify.
  LinkSpace space;
  space.Build(left_, right_, all_left_, 0.3, 1);
  for (int i = 0; i < 8; ++i) {
    auto l = left_.FindEntityByIri("http://l/e" + std::to_string(i));
    auto r = right_.FindEntityByIri("http://r/e" + std::to_string(i));
    EXPECT_TRUE(space.Contains(PackPair(*l, *r))) << i;
  }
  // Cross pairs proposed only by shared-token blocks are now absent.
  LinkSpace full;
  full.Build(left_, right_, all_left_, 0.3, 20000);
  EXPECT_LT(space.stats().candidate_pairs, full.stats().candidate_pairs);
}

TEST_F(LinkSpaceTest, FeatureCountAndMax) {
  LinkSpace space;
  space.Build(left_, right_, all_left_, 0.3, 20000);
  auto l = left_.FindEntityByIri("http://l/e0");
  auto r = right_.FindEntityByIri("http://r/e0");
  const FeatureKey feature = (*space.FeaturesOf(PackPair(*l, *r)))[0].key;
  EXPECT_GE(space.FeatureCount(feature), 8u);
  EXPECT_EQ(space.FeatureCount(0xdeadbeefULL), 0u);
  EXPECT_GE(space.MaxFeatureCount(), space.FeatureCount(feature));
}

TEST(LinkSpaceScenarioTest, CoversMostGroundTruth) {
  datagen::ScenarioConfig config;
  config.seed = 77;
  config.num_shared = 80;
  config.num_left_only = 80;
  config.num_right_only = 40;
  config.domains = {"person"};
  config.value_noise = 0.5;
  datagen::GeneratedPair pair = datagen::GenerateScenario(config);
  std::vector<rdf::EntityId> lefts;
  for (rdf::EntityId e = 0; e < pair.left.num_entities(); ++e) {
    lefts.push_back(e);
  }
  LinkSpace space;
  space.Build(pair.left, pair.right, lefts, 0.3, 20000);
  size_t covered = 0;
  for (feedback::PairKey key : pair.truth.pairs()) {
    if (space.Contains(key)) ++covered;
  }
  // The space is ALEX's recall ceiling; blocking must retain nearly all
  // ground-truth pairs.
  EXPECT_GE(static_cast<double>(covered) / pair.truth.size(), 0.9);
  // And the theta filter must remove the vast majority of the cross
  // product (Figure 5a).
  EXPECT_LT(static_cast<double>(space.size()) /
                static_cast<double>(space.stats().total_possible),
            0.2);
}

}  // namespace
}  // namespace alex::core
