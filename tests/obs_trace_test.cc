#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace alex::obs {
namespace {

// The recorder is process-global; every test starts from a clean, disabled
// recorder and leaves it that way.
class TraceRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::Global().SetEnabled(false);
    TraceRecorder::Global().Clear();
  }
  void TearDown() override {
    TraceRecorder::Global().SetEnabled(false);
    TraceRecorder::Global().Clear();
  }
};

TEST_F(TraceRecorderTest, DisabledRecorderRetainsNothing) {
  { TraceSpan span("test", "ShouldNotAppear"); }
  EXPECT_TRUE(TraceRecorder::Global().Events().empty());
}

TEST_F(TraceRecorderTest, SpanEnabledAtConstructionIsRecorded) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.SetEnabled(true);
  { TraceSpan span("test", "Recorded"); }
  recorder.SetEnabled(false);
  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "Recorded");
  EXPECT_STREQ(events[0].category, "test");
}

TEST_F(TraceRecorderTest, NestedSpansExportParentBeforeChildren) {
  // A parent span strictly encloses its children, so in the (ts asc,
  // dur desc) export order the parent comes first and every child's
  // interval nests inside it — what Perfetto needs to draw the stack.
  TraceRecorder& recorder = TraceRecorder::Global();
  // Busy-waits one clock tick so consecutive spans get distinct begin
  // timestamps and nonzero durations (no sleeps; the steady clock itself
  // is the only dependency).
  auto tick = [&recorder] {
    const uint64_t start = recorder.NowMicros();
    while (recorder.NowMicros() == start) {
    }
  };
  recorder.SetEnabled(true);
  {
    TraceSpan outer("test", "Outer");
    tick();
    {
      TraceSpan middle("test", "Middle");
      tick();
      {
        TraceSpan inner("test", "Inner");
        tick();
      }
      tick();
    }
    {
      TraceSpan sibling("test", "Sibling");
      tick();
    }
  }
  recorder.SetEnabled(false);

  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_STREQ(events[0].name, "Outer");

  auto find = [&events](const std::string& name) {
    return *std::find_if(events.begin(), events.end(),
                         [&name](const TraceEvent& e) {
                           return name == e.name;
                         });
  };
  const TraceEvent outer = find("Outer");
  const TraceEvent middle = find("Middle");
  const TraceEvent inner = find("Inner");
  const TraceEvent sibling = find("Sibling");

  auto encloses = [](const TraceEvent& a, const TraceEvent& b) {
    return a.ts_micros <= b.ts_micros &&
           a.ts_micros + a.dur_micros >= b.ts_micros + b.dur_micros;
  };
  EXPECT_TRUE(encloses(outer, middle));
  EXPECT_TRUE(encloses(middle, inner));
  EXPECT_TRUE(encloses(outer, sibling));
  // Sibling starts after the middle branch ended.
  EXPECT_GE(sibling.ts_micros, middle.ts_micros + middle.dur_micros);
  // Events are sorted by begin time; equal begins put the longer first.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_micros, events[i].ts_micros);
  }
}

TEST_F(TraceRecorderTest, ThreadsGetDistinctTidsAndAllSpansSurvive) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.SetEnabled(true);
  constexpr int kTasks = 32;
  {
    ThreadPool pool(4);
    for (int t = 0; t < kTasks; ++t) {
      pool.Submit([] { TraceSpan span("test", "PoolSpan"); });
    }
    pool.Wait();
  }
  recorder.SetEnabled(false);

  const std::vector<TraceEvent> events = recorder.Events();
  size_t pool_spans = 0;
  std::set<uint32_t> tids;
  for (const TraceEvent& e : events) {
    if (std::string(e.name) == "PoolSpan") {
      ++pool_spans;
      tids.insert(e.tid);
    }
  }
  // Ring buffers of exited pool threads must survive into the export.
  EXPECT_EQ(pool_spans, static_cast<size_t>(kTasks));
  EXPECT_GE(tids.size(), 1u);
  EXPECT_LE(tids.size(), 4u);
}

TEST_F(TraceRecorderTest, ClearDropsRetainedEvents) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.SetEnabled(true);
  { TraceSpan span("test", "Dropped"); }
  recorder.Clear();
  { TraceSpan span("test", "Kept"); }
  recorder.SetEnabled(false);
  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "Kept");
}

TEST_F(TraceRecorderTest, ChromeTraceExportIsWellFormed) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.SetEnabled(true);
  {
    TraceSpan outer("build", "Outer");
    TraceSpan inner("build", "Inner");
  }
  recorder.SetEnabled(false);

  std::ostringstream os;
  recorder.WriteChromeTrace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"Outer\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"build\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\""), std::string::npos);
  // Structurally balanced (no nested strings in our literal-only names, so
  // brace counting is a valid well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST_F(TraceRecorderTest, RingBufferOverwritesOldestBeyondCapacity) {
  // Record well past kRingCapacity on one thread via the public Record()
  // overload with synthetic monotone timestamps: the ring must retain
  // exactly the newest kRingCapacity events, in order, no duplicates.
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.SetEnabled(true);
  const size_t total = TraceRecorder::kRingCapacity + 1000;
  for (size_t i = 0; i < total; ++i) {
    TraceEvent event;
    event.category = "test";
    event.name = "wrap";
    event.ts_micros = static_cast<uint64_t>(i);
    event.dur_micros = 1;
    recorder.Record(event);
  }
  recorder.SetEnabled(false);

  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), TraceRecorder::kRingCapacity);
  // Events() sorts by ts; synthetic stamps are unique, so the retained
  // window is exactly [total - capacity, total).
  EXPECT_EQ(events.front().ts_micros,
            static_cast<uint64_t>(total - TraceRecorder::kRingCapacity));
  EXPECT_EQ(events.back().ts_micros, static_cast<uint64_t>(total - 1));
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ts_micros, events[i - 1].ts_micros + 1);
  }
}

TEST_F(TraceRecorderTest, ConcurrentWritersDuringExportStaySane) {
  // Writers keep recording while another thread repeatedly snapshots and
  // exports; the exercise is for TSan (this test is in the sanitize label),
  // and the invariant checked here is that every export is internally
  // consistent (balanced JSON, monotone event order).
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.SetEnabled(true);
  std::atomic<bool> stop{false};
  ThreadPool pool(4);
  for (int t = 0; t < 3; ++t) {
    pool.Submit([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        TraceSpan span("test", "concurrent");
        span.AddArg("writer", 1);
      }
    });
  }
  for (int round = 0; round < 20; ++round) {
    const std::vector<TraceEvent> events = recorder.Events();
    for (size_t i = 1; i < events.size(); ++i) {
      EXPECT_LE(events[i - 1].ts_micros, events[i].ts_micros);
    }
    std::ostringstream os;
    recorder.WriteChromeTrace(os);
    const std::string json = os.str();
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
  }
  stop.store(true);
  pool.Wait();
  recorder.SetEnabled(false);
}

TEST_F(TraceRecorderTest, MacroSpansCompileAndRespectRuntimeGate) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.SetEnabled(true);
  {
    ALEX_TRACE_SPAN("test", "MacroSpan");
  }
  recorder.SetEnabled(false);
  const std::vector<TraceEvent> events = recorder.Events();
#ifdef ALEX_TRACING_ENABLED
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "MacroSpan");
#else
  // Tracing compiled out: the macro must expand to nothing.
  EXPECT_TRUE(events.empty());
#endif
}

}  // namespace
}  // namespace alex::obs
