#include "rdf/turtle.h"

#include <sstream>

#include <gtest/gtest.h>

namespace alex::rdf {
namespace {

struct Parsed {
  Dictionary dict;
  TripleStore store;
};

Parsed MustParse(std::string_view doc) {
  Parsed out;
  Status s = ParseTurtle(doc, &out.dict, &out.store);
  EXPECT_TRUE(s.ok()) << s;
  return out;
}

bool Has(const Parsed& p, const Term& s, const Term& pr, const Term& o) {
  auto si = p.dict.Lookup(s);
  auto pi = p.dict.Lookup(pr);
  auto oi = p.dict.Lookup(o);
  if (!si || !pi || !oi) return false;
  return p.store.Contains(Triple{*si, *pi, *oi});
}

TEST(TurtleTest, SimpleTriple) {
  Parsed p = MustParse("<http://s> <http://p> <http://o> .");
  EXPECT_EQ(p.store.size(), 1u);
  EXPECT_TRUE(Has(p, Term::Iri("http://s"), Term::Iri("http://p"),
                  Term::Iri("http://o")));
}

TEST(TurtleTest, PrefixDirectives) {
  Parsed p = MustParse(
      "@prefix ex: <http://example.org/> .\n"
      "PREFIX foo: <http://foo.org/>\n"
      "ex:a foo:b ex:c .");
  EXPECT_TRUE(Has(p, Term::Iri("http://example.org/a"),
                  Term::Iri("http://foo.org/b"),
                  Term::Iri("http://example.org/c")));
}

TEST(TurtleTest, BaseResolvesRelativeIris) {
  Parsed p = MustParse(
      "@base <http://base.org/> .\n"
      "<s> <p> <o> .");
  EXPECT_TRUE(Has(p, Term::Iri("http://base.org/s"),
                  Term::Iri("http://base.org/p"),
                  Term::Iri("http://base.org/o")));
}

TEST(TurtleTest, PredicateAndObjectLists) {
  Parsed p = MustParse(
      "@prefix ex: <http://x/> .\n"
      "ex:s ex:p1 \"a\", \"b\" ;\n"
      "     ex:p2 \"c\" ;\n"
      "     .");
  EXPECT_EQ(p.store.size(), 3u);
  EXPECT_TRUE(Has(p, Term::Iri("http://x/s"), Term::Iri("http://x/p1"),
                  Term::Literal("a")));
  EXPECT_TRUE(Has(p, Term::Iri("http://x/s"), Term::Iri("http://x/p1"),
                  Term::Literal("b")));
  EXPECT_TRUE(Has(p, Term::Iri("http://x/s"), Term::Iri("http://x/p2"),
                  Term::Literal("c")));
}

TEST(TurtleTest, AKeyword) {
  Parsed p = MustParse(
      "@prefix ex: <http://x/> .\n"
      "ex:s a ex:Person .");
  EXPECT_TRUE(Has(p, Term::Iri("http://x/s"),
                  Term::Iri(std::string(kRdfType)),
                  Term::Iri("http://x/Person")));
}

TEST(TurtleTest, LiteralVariants) {
  Parsed p = MustParse(
      "@prefix ex: <http://x/> .\n"
      "@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n"
      "ex:s ex:str \"hi\\nthere\" ;\n"
      "     ex:lang \"bonjour\"@fr ;\n"
      "     ex:typed \"5\"^^xsd:integer ;\n"
      "     ex:typed2 \"x\"^^<http://dt> ;\n"
      "     ex:int 42 ;\n"
      "     ex:neg -7 ;\n"
      "     ex:dbl 3.25 ;\n"
      "     ex:flag true ;\n"
      "     ex:flag2 false .");
  EXPECT_EQ(p.store.size(), 9u);
  EXPECT_TRUE(Has(p, Term::Iri("http://x/s"), Term::Iri("http://x/str"),
                  Term::Literal("hi\nthere")));
  EXPECT_TRUE(Has(p, Term::Iri("http://x/s"), Term::Iri("http://x/lang"),
                  Term::LangLiteral("bonjour", "fr")));
  EXPECT_TRUE(Has(p, Term::Iri("http://x/s"), Term::Iri("http://x/typed"),
                  Term::TypedLiteral("5", std::string(kXsdInteger))));
  EXPECT_TRUE(Has(p, Term::Iri("http://x/s"), Term::Iri("http://x/int"),
                  Term::TypedLiteral("42", std::string(kXsdInteger))));
  EXPECT_TRUE(Has(p, Term::Iri("http://x/s"), Term::Iri("http://x/neg"),
                  Term::TypedLiteral("-7", std::string(kXsdInteger))));
  EXPECT_TRUE(Has(p, Term::Iri("http://x/s"), Term::Iri("http://x/dbl"),
                  Term::TypedLiteral("3.25", std::string(kXsdDouble))));
  EXPECT_TRUE(
      Has(p, Term::Iri("http://x/s"), Term::Iri("http://x/flag"),
          Term::TypedLiteral("true",
                             "http://www.w3.org/2001/XMLSchema#boolean")));
}

TEST(TurtleTest, BlankNodes) {
  Parsed p = MustParse("_:a <http://p> _:b .");
  EXPECT_TRUE(Has(p, Term::Blank("a"), Term::Iri("http://p"),
                  Term::Blank("b")));
}

TEST(TurtleTest, CommentsEverywhere) {
  Parsed p = MustParse(
      "# leading comment\n"
      "<http://s> <http://p> # mid comment\n"
      "  \"v\" . # trailing\n");
  EXPECT_EQ(p.store.size(), 1u);
}

TEST(TurtleTest, MultipleStatements) {
  Parsed p = MustParse(
      "<http://s1> <http://p> \"1\" .\n"
      "<http://s2> <http://p> \"2\" .\n"
      "<http://s3> <http://p> \"3\" .\n");
  EXPECT_EQ(p.store.size(), 3u);
}

TEST(TurtleTest, Errors) {
  Dictionary d;
  TripleStore s;
  EXPECT_FALSE(ParseTurtle("<http://s> <http://p> <http://o>", &d, &s).ok());
  EXPECT_FALSE(ParseTurtle("ex:a ex:b ex:c .", &d, &s).ok());  // No prefix.
  EXPECT_FALSE(ParseTurtle("<http://s> <http://p> [ ] .", &d, &s).ok());
  EXPECT_FALSE(ParseTurtle("<http://s> <http://p> ( ) .", &d, &s).ok());
  EXPECT_FALSE(
      ParseTurtle("<http://s> <http://p> \"\"\"x\"\"\" .", &d, &s).ok());
  EXPECT_FALSE(ParseTurtle("<http://s> \"lit\" <http://o> .", &d, &s).ok());
  Status err = ParseTurtle("<http://s> <http://p>\n\"unterminated .", &d, &s);
  EXPECT_FALSE(err.ok());
  EXPECT_NE(err.message().find("line 2"), std::string::npos);
}

TEST(TurtleTest, ReadFromStream) {
  std::istringstream in("<http://s> <http://p> \"v\" .");
  Dictionary d;
  TripleStore s;
  ASSERT_TRUE(ReadTurtle(in, &d, &s).ok());
  EXPECT_EQ(s.size(), 1u);
}

TEST(TurtleTest, DotInsidePrefixedNameLocalPart) {
  Parsed p = MustParse(
      "@prefix ex: <http://x/> .\n"
      "ex:a.b ex:p ex:c .");
  EXPECT_TRUE(Has(p, Term::Iri("http://x/a.b"), Term::Iri("http://x/p"),
                  Term::Iri("http://x/c")));
}

}  // namespace
}  // namespace alex::rdf
