// Causal-tracing integration tests: one federated query — plan execution,
// probe-cache lookups, retry attempts, breaker decisions — exports as one
// connected span tree under the query root's trace id. These tests drive
// the real decorated endpoint stack (fault injection + retry/breaker +
// probe cache) with the global recorder enabled and reconstruct the tree
// from the exported events.

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/thread_pool.h"
#include "common/retry.h"
#include "federation/endpoint.h"
#include "federation/fault_injection.h"
#include "federation/federated_engine.h"
#include "federation/probe_cache.h"
#include "federation/resilient_endpoint.h"
#include "obs/query_stats.h"
#include "obs/trace.h"

namespace alex::obs {
namespace {

using fed::CachingEndpoint;
using fed::CircuitBreakerConfig;
using fed::Endpoint;
using fed::FaultInjectedEndpoint;
using fed::FaultProfile;
using fed::FederatedEngine;
using fed::ResilientEndpoint;
using rdf::Term;

constexpr char kSpanningQuery[] =
    "SELECT ?p ?o WHERE { <http://l/acme> ?p ?o . }";

class TraceContextTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::Global().SetEnabled(false);
    TraceRecorder::Global().Clear();
    QueryLog::Global().Clear();
    left_.AddIriTriple("http://l/alice", "http://l/worksFor", "http://l/acme");
    left_.AddLiteralTriple("http://l/acme", "http://l/name",
                           Term::Literal("Acme"));
    right_.AddLiteralTriple("http://r/acme-corp", "http://r/hq",
                            Term::Literal("Belcaster"));
    right_.AddLiteralTriple("http://r/acme-corp", "http://r/label",
                            Term::Literal("Acme Corporation"));
    links_.Add("http://l/acme", "http://r/acme-corp");
    left_ep_ = std::make_unique<Endpoint>(&left_);
    right_ep_ = std::make_unique<Endpoint>(&right_);
  }

  void TearDown() override {
    TraceRecorder::Global().SetEnabled(false);
    TraceRecorder::Global().Clear();
    QueryLog::Global().Clear();
  }

  /// Builds the fully decorated stack (faults -> retry/breaker -> probe
  /// cache) over the shared SimClock and returns an engine on top of it.
  void BuildStack(const FaultProfile& right_profile,
                  RetryPolicy retry = RetryPolicy()) {
    faulty_left_ = std::make_unique<FaultInjectedEndpoint>(
        left_ep_.get(), FaultProfile::Healthy(), /*seed=*/21, &clock_);
    faulty_right_ = std::make_unique<FaultInjectedEndpoint>(
        right_ep_.get(), right_profile, /*seed=*/22, &clock_);
    resilient_left_ = std::make_unique<ResilientEndpoint>(
        faulty_left_.get(), retry, CircuitBreakerConfig(), /*seed=*/23,
        &clock_);
    resilient_right_ = std::make_unique<ResilientEndpoint>(
        faulty_right_.get(), retry, CircuitBreakerConfig(), /*seed=*/24,
        &clock_);
    cached_left_ = std::make_unique<CachingEndpoint>(resilient_left_.get());
    cached_right_ = std::make_unique<CachingEndpoint>(resilient_right_.get());
    engine_ = std::make_unique<FederatedEngine>(
        cached_left_.get(), cached_right_.get(), &links_);
  }

  rdf::Dataset left_{"hr"};
  rdf::Dataset right_{"companies"};
  fed::LinkIndex links_;
  SimClock clock_;
  std::unique_ptr<Endpoint> left_ep_;
  std::unique_ptr<Endpoint> right_ep_;
  std::unique_ptr<FaultInjectedEndpoint> faulty_left_;
  std::unique_ptr<FaultInjectedEndpoint> faulty_right_;
  std::unique_ptr<ResilientEndpoint> resilient_left_;
  std::unique_ptr<ResilientEndpoint> resilient_right_;
  std::unique_ptr<CachingEndpoint> cached_left_;
  std::unique_ptr<CachingEndpoint> cached_right_;
  std::unique_ptr<FederatedEngine> engine_;
};

#ifdef ALEX_TRACING_ENABLED

TEST_F(TraceContextTest, NestedSpansInheritTraceAndParentIds) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.SetEnabled(true);
  uint64_t outer_trace = 0, outer_span = 0, inner_span = 0;
  {
    TraceSpan outer("test", "outer");
    outer_trace = outer.trace_id();
    outer_span = outer.span_id();
    {
      TraceSpan inner("test", "inner");
      inner_span = inner.span_id();
      EXPECT_EQ(inner.trace_id(), outer_trace);
    }
    // The thread context is restored after inner closes.
    EXPECT_EQ(TraceRecorder::CurrentContext().span_id, outer_span);
  }
  EXPECT_EQ(TraceRecorder::CurrentContext().trace_id, 0u);
  recorder.SetEnabled(false);

  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 2u);
  std::map<std::string, TraceEvent> by_name;
  for (const TraceEvent& e : events) by_name[e.name] = e;
  EXPECT_EQ(by_name.at("outer").parent_span_id, 0u);
  EXPECT_EQ(by_name.at("inner").parent_span_id, outer_span);
  EXPECT_EQ(by_name.at("inner").trace_id, outer_trace);
  EXPECT_EQ(by_name.at("inner").span_id, inner_span);
}

TEST_F(TraceContextTest, RootSpanMintsFreshTraceEvenInsideOpenSpan) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.SetEnabled(true);
  uint64_t outer_trace = 0, root_trace = 0;
  {
    TraceSpan outer("test", "outer");
    outer_trace = outer.trace_id();
    {
      TraceSpan root("test", "root", TraceSpan::Root::kNewTrace);
      root_trace = root.trace_id();
      EXPECT_NE(root_trace, outer_trace);
      // Children inside the root join the new trace.
      TraceSpan child("test", "child");
      EXPECT_EQ(child.trace_id(), root_trace);
    }
    // Back outside, the old trace is ambient again.
    EXPECT_EQ(TraceRecorder::CurrentContext().trace_id, outer_trace);
  }
  recorder.SetEnabled(false);

  const std::vector<TraceEvent> events = recorder.Events();
  for (const TraceEvent& e : events) {
    if (std::string(e.name) == "root") {
      // A root reports no parent even though an outer span was open.
      EXPECT_EQ(e.parent_span_id, 0u);
      EXPECT_EQ(e.trace_id, root_trace);
    }
  }
}

TEST_F(TraceContextTest, EachFederatedQueryMintsItsOwnTrace) {
  BuildStack(FaultProfile::Healthy());
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.SetEnabled(true);
  for (int i = 0; i < 3; ++i) {
    auto r = engine_->ExecuteText(kSpanningQuery);
    ASSERT_TRUE(r.ok()) << r.status();
  }
  recorder.SetEnabled(false);

  std::set<uint64_t> root_traces;
  for (const TraceEvent& e : recorder.Events()) {
    if (std::string(e.name) == "FederatedEngine::Execute") {
      EXPECT_NE(e.trace_id, 0u);
      EXPECT_EQ(e.parent_span_id, 0u);
      root_traces.insert(e.trace_id);
    }
  }
  EXPECT_EQ(root_traces.size(), 3u);
}

TEST_F(TraceContextTest, QueryTreeIsConnectedAcrossTheWholeStack) {
  // Acceptance criterion: run traced queries against the full decorated
  // stack under fault injection (so retries and breaker decisions fire) and
  // reconstruct the tree. At least 95% of probe/retry/cache spans must
  // carry the trace id of a query root and resolve a parent chain that
  // terminates at that root. In-process this should in fact be 100%.
  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.jitter_fraction = 0.0;
  BuildStack(FaultProfile::Flaky(), retry);
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.SetEnabled(true);
  for (int i = 0; i < 8; ++i) {
    auto r = engine_->ExecuteText(kSpanningQuery);
    ASSERT_TRUE(r.ok()) << r.status();
  }
  recorder.SetEnabled(false);

  const std::vector<TraceEvent> events = recorder.Events();
  std::set<uint64_t> root_traces;
  std::map<uint64_t, const TraceEvent*> by_span;
  for (const TraceEvent& e : events) {
    if (e.span_id != 0) by_span[e.span_id] = &e;
    if (std::string(e.name) == "FederatedEngine::Execute") {
      root_traces.insert(e.trace_id);
    }
  }
  ASSERT_FALSE(root_traces.empty());

  // Every span with a resolvable parent chain ending at a query root is
  // "linked"; count linkage over the instrumentation spans of interest.
  auto linked_to_root = [&](const TraceEvent& e) {
    if (root_traces.count(e.trace_id) == 0) return false;
    const TraceEvent* cursor = &e;
    for (int depth = 0; depth < 64; ++depth) {
      if (cursor->parent_span_id == 0) {
        return std::string(cursor->name) == "FederatedEngine::Execute";
      }
      auto it = by_span.find(cursor->parent_span_id);
      if (it == by_span.end()) return false;
      cursor = it->second;
    }
    return false;
  };

  const std::set<std::string> kStackSpans = {
      "pattern_probe", "probe_attempt", "breaker_reject",
      "CachingEndpoint::Probe"};
  size_t stack_spans = 0, linked = 0, attempts = 0, probes = 0,
         cache_spans = 0;
  for (const TraceEvent& e : events) {
    const std::string name = e.name;
    if (kStackSpans.count(name) == 0) continue;
    ++stack_spans;
    if (name == "probe_attempt") ++attempts;
    if (name == "pattern_probe") ++probes;
    if (name == "CachingEndpoint::Probe") ++cache_spans;
    if (linked_to_root(e)) ++linked;
  }
  ASSERT_GT(probes, 0u) << "no pattern_probe spans recorded";
  ASSERT_GT(attempts, 0u) << "no retry-layer attempt spans recorded";
  ASSERT_GT(cache_spans, 0u) << "no probe-cache spans recorded";
  EXPECT_GE(static_cast<double>(linked),
            0.95 * static_cast<double>(stack_spans))
      << linked << "/" << stack_spans << " spans linked to a query root";
  // Retry attempts sit strictly below the probe path in the tree: their
  // parent is the cache span (cacheable probes) or the pattern probe.
  for (const TraceEvent& e : events) {
    if (std::string(e.name) != "probe_attempt") continue;
    auto it = by_span.find(e.parent_span_id);
    ASSERT_NE(it, by_span.end());
    const std::string parent = it->second->name;
    EXPECT_TRUE(parent == "pattern_probe" ||
                parent == "CachingEndpoint::Probe")
        << parent;
  }
}

TEST_F(TraceContextTest, QueryLogCarriesTraceIdExemplarsAndTallies) {
  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.jitter_fraction = 0.0;
  BuildStack(FaultProfile::DownFor(1), retry);  // Exactly one retry fires.
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.SetEnabled(true);
  auto r = engine_->ExecuteText(kSpanningQuery);
  ASSERT_TRUE(r.ok()) << r.status();
  recorder.SetEnabled(false);

  const QueryLog::Aggregate totals = QueryLog::Global().Totals();
  EXPECT_EQ(totals.queries, 1u);
  EXPECT_GT(totals.probes, 0u);
  EXPECT_GE(totals.retries, 1u);
  EXPECT_EQ(totals.rows, r->rows.size());

  const std::vector<QueryStats> slowest = QueryLog::Global().Slowest();
  ASSERT_EQ(slowest.size(), 1u);
  const QueryStats& q = slowest.front();
  EXPECT_NE(q.trace_id, 0u);
  EXPECT_GT(q.probes, 0u);
  EXPECT_GE(q.retries, 1u);
  EXPECT_FALSE(q.failed);
  // The exemplar matches the root span the recorder retained.
  bool found_root = false;
  for (const TraceEvent& e : recorder.Events()) {
    if (e.trace_id == q.trace_id &&
        std::string(e.name) == "FederatedEngine::Execute") {
      found_root = true;
    }
  }
  EXPECT_TRUE(found_root);
}

TEST_F(TraceContextTest, UntracedQueriesRecordZeroTraceIdExemplar) {
  BuildStack(FaultProfile::Healthy());
  // Recorder stays disabled: stats still flow, exemplar is 0.
  auto r = engine_->ExecuteText(kSpanningQuery);
  ASSERT_TRUE(r.ok()) << r.status();
  const std::vector<QueryStats> slowest = QueryLog::Global().Slowest();
  ASSERT_EQ(slowest.size(), 1u);
  EXPECT_EQ(slowest.front().trace_id, 0u);
  EXPECT_GT(slowest.front().probes, 0u);
  EXPECT_TRUE(TraceRecorder::Global().Events().empty());
}

// Regression for thread-state bleed across pooled workers: a federated
// query run on a pool thread must leave NO residue — neither the active
// query-stats pointer nor the ambient trace context — so the next query
// the same worker picks up starts from a clean slate (ThreadStateGuard in
// FederatedEngine::Instrumented is the backstop). Before the guard, a
// worker that died mid-query or an endpoint that leaked a span left the
// thread-locals dirty and the NEXT query on that worker parented its spans
// into the previous query's trace.
TEST_F(TraceContextTest, PooledWorkerStartsEachQueryWithCleanThreadState) {
  BuildStack(FaultProfile::Healthy());
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.SetEnabled(true);

  ThreadPool pool(1);  // ONE worker: both queries reuse the same thread.
  std::atomic<bool> residue{false};
  auto run_query = [&] {
    // Clean slate before the query...
    if (CurrentQueryStats() != nullptr) residue = true;
    if (TraceRecorder::CurrentContext().trace_id != 0) residue = true;
    auto r = engine_->ExecuteText(kSpanningQuery);
    if (!r.ok()) residue = true;
    // ...and after it: the root scope restored everything on exit.
    if (CurrentQueryStats() != nullptr) residue = true;
    if (TraceRecorder::CurrentContext().trace_id != 0) residue = true;
  };
  pool.Submit(run_query);
  pool.Wait();
  pool.Submit(run_query);
  pool.Wait();
  recorder.SetEnabled(false);
  EXPECT_FALSE(residue.load());

  // The two pooled queries minted distinct root traces — no id leaked from
  // the first into the second.
  std::set<uint64_t> root_traces;
  for (const TraceEvent& e : recorder.Events()) {
    if (std::string(e.name) == "FederatedEngine::Execute") {
      EXPECT_EQ(e.parent_span_id, 0u);
      root_traces.insert(e.trace_id);
    }
  }
  EXPECT_EQ(root_traces.size(), 2u);
}

#else  // !ALEX_TRACING_ENABLED

TEST_F(TraceContextTest, TracingCompiledOutLeavesStatsWorking) {
  BuildStack(FaultProfile::Healthy());
  auto r = engine_->ExecuteText(kSpanningQuery);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(QueryLog::Global().Totals().queries, 1u);
  EXPECT_TRUE(TraceRecorder::Global().Events().empty());
}

#endif  // ALEX_TRACING_ENABLED

TEST_F(TraceContextTest, QueryStatsScopeNestsAndRestores) {
  EXPECT_EQ(CurrentQueryStats(), nullptr);
  ActiveQueryStats outer;
  {
    QueryStatsScope outer_scope(&outer);
    EXPECT_EQ(CurrentQueryStats(), &outer);
    ActiveQueryStats inner;
    {
      QueryStatsScope inner_scope(&inner);
      EXPECT_EQ(CurrentQueryStats(), &inner);
      CurrentQueryStats()->probes += 2;
    }
    EXPECT_EQ(CurrentQueryStats(), &outer);
    CurrentQueryStats()->probes += 1;
    EXPECT_EQ(inner.probes, 2u);
  }
  EXPECT_EQ(CurrentQueryStats(), nullptr);
  EXPECT_EQ(outer.probes, 1u);
}

TEST_F(TraceContextTest, QueryLogKeepsTopKSlowestSorted) {
  QueryLog& log = QueryLog::Global();
  const size_t total = QueryLog::kSlowCapacity + 10;
  for (size_t i = 0; i < total; ++i) {
    QueryStats q;
    q.latency_seconds = static_cast<double>(i);
    q.rows = i;
    log.Record(q);
  }
  const std::vector<QueryStats> slowest = log.Slowest();
  ASSERT_EQ(slowest.size(), QueryLog::kSlowCapacity);
  // Slowest first, and only the top-K latencies survive.
  EXPECT_DOUBLE_EQ(slowest.front().latency_seconds,
                   static_cast<double>(total - 1));
  for (size_t i = 1; i < slowest.size(); ++i) {
    EXPECT_GE(slowest[i - 1].latency_seconds, slowest[i].latency_seconds);
  }
  EXPECT_DOUBLE_EQ(slowest.back().latency_seconds,
                   static_cast<double>(total - QueryLog::kSlowCapacity));
  EXPECT_EQ(log.Totals().queries, total);

  std::ostringstream os;
  log.WriteSlowestJson(os, "");
  const std::string json = os.str();
  EXPECT_NE(json.find("\"latency_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

}  // namespace
}  // namespace alex::obs
