#include "federation/federated_engine.h"

#include <gtest/gtest.h>

namespace alex::fed {
namespace {

using rdf::Term;

/// The paper's running example: find New York Times articles about the
/// NBA MVP of 2013. "LeBron James" exists in both datasets; the owl:sameAs
/// link bridges them.
class FederatedEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Left: DBpedia-like facts.
    left_.AddLiteralTriple("http://dbp/LeBron_James", "http://dbp/award",
                           Term::Literal("NBA MVP 2013"));
    left_.AddLiteralTriple("http://dbp/LeBron_James", "http://dbp/name",
                           Term::Literal("LeBron James"));
    left_.AddLiteralTriple("http://dbp/Kevin_Durant", "http://dbp/award",
                           Term::Literal("NBA MVP 2014"));

    // Right: NYTimes-like articles.
    right_.AddIriTriple("http://nyt/article1", "http://nyt/about",
                        "http://nyt/lebron-james");
    right_.AddLiteralTriple("http://nyt/article1", "http://nyt/headline",
                            Term::Literal("King James does it again"));
    right_.AddIriTriple("http://nyt/article2", "http://nyt/about",
                        "http://nyt/someone-else");
    right_.AddLiteralTriple("http://nyt/article2", "http://nyt/headline",
                            Term::Literal("Unrelated news"));

    links_.Add("http://dbp/LeBron_James", "http://nyt/lebron-james");

    left_ep_ = std::make_unique<Endpoint>(&left_);
    right_ep_ = std::make_unique<Endpoint>(&right_);
    engine_ = std::make_unique<FederatedEngine>(left_ep_.get(),
                                                right_ep_.get(), &links_);
  }

  rdf::Dataset left_{"dbpedia"};
  rdf::Dataset right_{"nytimes"};
  LinkIndex links_;
  std::unique_ptr<Endpoint> left_ep_;
  std::unique_ptr<Endpoint> right_ep_;
  std::unique_ptr<FederatedEngine> engine_;
};

TEST_F(FederatedEngineTest, CrossDatasetJoinViaSameAs) {
  auto r = engine_->ExecuteText(
      "SELECT ?headline WHERE { "
      "?player <http://dbp/award> \"NBA MVP 2013\" . "
      "?article <http://nyt/about> ?player . "
      "?article <http://nyt/headline> ?headline . }");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->NumRows(), 1u);
  EXPECT_EQ(r->rows[0].values[0],
            Term::Literal("King James does it again"));
}

TEST_F(FederatedEngineTest, ProvenanceRecordsLinksUsed) {
  auto r = engine_->ExecuteText(
      "SELECT ?headline WHERE { "
      "?player <http://dbp/award> \"NBA MVP 2013\" . "
      "?article <http://nyt/about> ?player . "
      "?article <http://nyt/headline> ?headline . }");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->NumRows(), 1u);
  ASSERT_EQ(r->rows[0].links_used.size(), 1u);
  EXPECT_EQ(r->rows[0].links_used[0],
            (SameAsLink{"http://dbp/LeBron_James", "http://nyt/lebron-james"}));
}

TEST_F(FederatedEngineTest, NoLinkNoAnswer) {
  links_.Remove("http://dbp/LeBron_James", "http://nyt/lebron-james");
  auto r = engine_->ExecuteText(
      "SELECT ?headline WHERE { "
      "?player <http://dbp/award> \"NBA MVP 2013\" . "
      "?article <http://nyt/about> ?player . "
      "?article <http://nyt/headline> ?headline . }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 0u);
}

TEST_F(FederatedEngineTest, WrongLinkProducesWrongAnswerWithProvenance) {
  // An incorrect link (the situation ALEX repairs): Durant linked to the
  // LeBron article entity.
  links_.Add("http://dbp/Kevin_Durant", "http://nyt/lebron-james");
  auto r = engine_->ExecuteText(
      "SELECT ?headline WHERE { "
      "?player <http://dbp/award> \"NBA MVP 2014\" . "
      "?article <http://nyt/about> ?player . "
      "?article <http://nyt/headline> ?headline . }");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->NumRows(), 1u);
  // The user would reject this answer; the provenance tells ALEX which link
  // to blame.
  EXPECT_EQ(r->rows[0].links_used[0],
            (SameAsLink{"http://dbp/Kevin_Durant", "http://nyt/lebron-james"}));
}

TEST_F(FederatedEngineTest, SingleDatasetQueriesStillWork) {
  auto r = engine_->ExecuteText(
      "SELECT ?p WHERE { ?p <http://dbp/award> \"NBA MVP 2014\" . }");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->NumRows(), 1u);
  EXPECT_EQ(r->rows[0].values[0], Term::Iri("http://dbp/Kevin_Durant"));
  EXPECT_TRUE(r->rows[0].links_used.empty());
}

TEST_F(FederatedEngineTest, MultipleLinksYieldMultipleRows) {
  links_.Add("http://dbp/LeBron_James", "http://nyt/someone-else");
  auto r = engine_->ExecuteText(
      "SELECT ?headline WHERE { "
      "?player <http://dbp/award> \"NBA MVP 2013\" . "
      "?article <http://nyt/about> ?player . "
      "?article <http://nyt/headline> ?headline . }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 2u);
}

TEST_F(FederatedEngineTest, DistinctAndLimitApply) {
  auto r = engine_->ExecuteText(
      "SELECT DISTINCT ?article WHERE { ?article <http://nyt/headline> ?h . } "
      "LIMIT 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 1u);
}

TEST_F(FederatedEngineTest, FiltersApply) {
  auto r = engine_->ExecuteText(
      "SELECT ?h WHERE { ?a <http://nyt/headline> ?h . "
      "FILTER(?h = \"Unrelated news\") }");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->NumRows(), 1u);
}

}  // namespace
}  // namespace alex::fed
