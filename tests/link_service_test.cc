// Tests for svc::LinkService and its admission controller: bounded
// in-flight accounting (TryEnter/Exit/shed), deterministic-mode
// repeatability (two identical runs produce identical reports),
// kill-and-resume through the service checkpoint payload, and a concurrent
// many-client smoke whose op accounting must balance exactly — the
// "sanitize" label routes that one through the TSan CI job.

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/partitioned.h"
#include "datagen/generator.h"
#include "datagen/scenarios.h"
#include "service/link_service.h"

namespace alex::svc {
namespace {

namespace fs = std::filesystem;

/// Fresh, empty scratch directory under the test temp root.
std::string ScratchDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("alex_svc_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

TEST(AdmissionControllerTest, BoundsInFlightAndCountsShedding) {
  AdmissionController admission(2);
  EXPECT_EQ(admission.max_in_flight(), 2u);
  EXPECT_TRUE(admission.TryEnter());
  EXPECT_TRUE(admission.TryEnter());
  EXPECT_EQ(admission.in_flight(), 2u);

  // At the bound: reject, count the shed, leave in_flight untouched.
  EXPECT_FALSE(admission.TryEnter());
  EXPECT_EQ(admission.shed(), 1u);
  EXPECT_EQ(admission.in_flight(), 2u);

  admission.Exit();
  EXPECT_EQ(admission.in_flight(), 1u);
  EXPECT_TRUE(admission.TryEnter());
  EXPECT_FALSE(admission.TryEnter());
  EXPECT_EQ(admission.shed(), 2u);

  admission.Exit();
  admission.Exit();
  EXPECT_EQ(admission.in_flight(), 0u);
}

class LinkServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::ScenarioConfig scenario;
    scenario.name = "svc_test";
    scenario.num_shared = 40;
    scenario.num_left_only = 15;
    scenario.num_right_only = 10;
    pair_ = datagen::GenerateScenario(scenario);
    alex_config_.episode_size = 1;  // Episodes end on service commits.
  }

  /// Fresh engine seeded with the full truth (links to confirm) so the
  /// workload has rows to cross.
  std::unique_ptr<core::PartitionedAlex> MakeEngine() {
    auto alex = std::make_unique<core::PartitionedAlex>(&pair_.left,
                                                        &pair_.right,
                                                        alex_config_);
    alex->Build();
    alex->InitializeCandidates(pair_.truth.AsVector());
    return alex;
  }

  ServiceConfig BaseConfig() const {
    ServiceConfig config;
    config.num_clients = 4;
    config.ops_per_client = 12;
    config.feedback_fraction = 0.8;
    config.feedback_batch = 8;
    config.workload_queries = 16;
    config.seed = 42;
    return config;
  }

  datagen::GeneratedPair pair_;
  core::AlexConfig alex_config_;
};

TEST_F(LinkServiceTest, DeterministicRunsAreRepeatable) {
  ServiceConfig config = BaseConfig();
  config.deterministic = true;

  auto alex1 = MakeEngine();
  LinkService service1(&pair_, alex1.get(), alex_config_, config);
  const ServiceReport r1 = service1.Run();

  auto alex2 = MakeEngine();
  LinkService service2(&pair_, alex2.get(), alex_config_, config);
  const ServiceReport r2 = service2.Run();

  EXPECT_EQ(r1.ops, r2.ops);
  EXPECT_EQ(r1.queries, r2.queries);
  EXPECT_EQ(r1.shed, r2.shed);
  EXPECT_EQ(r1.answered, r2.answered);
  EXPECT_EQ(r1.rows, r2.rows);
  EXPECT_EQ(r1.feedback_items, r2.feedback_items);
  EXPECT_EQ(r1.committed_episodes, r2.committed_episodes);
  EXPECT_EQ(r1.epochs_published, r2.epochs_published);
  EXPECT_EQ(r1.links_added, r2.links_added);
  EXPECT_EQ(r1.links_removed, r2.links_removed);
  EXPECT_EQ(r1.quality.f_measure, r2.quality.f_measure);
  // And the run actually exercised the loop: feedback committed, epochs
  // published, queries answered.
  EXPECT_GT(r1.queries, 0u);
  EXPECT_GT(r1.answered, 0u);
  EXPECT_GT(r1.committed_episodes, 0u);
  EXPECT_GT(r1.epochs_published, 0u);
}

TEST_F(LinkServiceTest, KillAndResumeRestoresServiceState) {
  const std::string dir = ScratchDir("resume");
  ServiceConfig config = BaseConfig();
  config.deterministic = true;
  config.checkpoint_dir = dir;
  config.checkpoint_every = 1;

  auto alex1 = MakeEngine();
  LinkService service1(&pair_, alex1.get(), alex_config_, config);
  const ServiceReport r1 = service1.Run();
  ASSERT_TRUE(r1.resume_error.empty());
  ASSERT_GT(r1.committed_episodes, 0u);
  ASSERT_GT(r1.checkpoints_written, 0u);

  // "Kill": throw away the process state. Resume into a FRESH engine from
  // the latest checkpoint and run zero further ops — every counter and the
  // restored link/candidate state must match the first run's final state.
  ServiceConfig resume_config = BaseConfig();
  resume_config.deterministic = true;
  resume_config.ops_per_client = 0;
  resume_config.resume_from = dir;

  auto alex2 = MakeEngine();
  LinkService service2(&pair_, alex2.get(), alex_config_, resume_config);
  const ServiceReport r2 = service2.Run();
  EXPECT_TRUE(r2.resume_error.empty()) << r2.resume_error;
  EXPECT_EQ(r2.committed_episodes, r1.committed_episodes);
  EXPECT_EQ(r2.feedback_items, r1.feedback_items);
  EXPECT_EQ(r2.links_added, r1.links_added);
  EXPECT_EQ(r2.links_removed, r1.links_removed);
  EXPECT_EQ(r2.quality.precision, r1.quality.precision);
  EXPECT_EQ(r2.quality.recall, r1.quality.recall);
  EXPECT_EQ(r2.quality.f_measure, r1.quality.f_measure);
  EXPECT_EQ(service2.links().Acquire()->size(),
            service1.links().Acquire()->size());

  // Resuming from a garbage path reports the error and starts fresh
  // instead of crashing or half-restoring.
  ServiceConfig bad_config = BaseConfig();
  bad_config.deterministic = true;
  bad_config.ops_per_client = 0;
  bad_config.resume_from = dir + "/does_not_exist";
  auto alex3 = MakeEngine();
  LinkService service3(&pair_, alex3.get(), alex_config_, bad_config);
  const ServiceReport r3 = service3.Run();
  EXPECT_FALSE(r3.resume_error.empty());
  EXPECT_EQ(r3.committed_episodes, 0u);
}

// Concurrent smoke: one thread per client against the shared service. Op
// accounting must balance exactly (queries == ops - shed) and feedback
// must flow into committed episodes. TSan target via the "sanitize" label.
TEST_F(LinkServiceTest, ConcurrentClientsBalanceOpAccounting) {
  ServiceConfig config = BaseConfig();
  config.num_clients = 8;
  config.ops_per_client = 15;
  config.deterministic = false;
  // Bound in-flight below the client count so the shed path is armed (it
  // may or may not fire — queries are fast — but the accounting below holds
  // either way).
  config.max_in_flight = 6;

  auto alex = MakeEngine();
  LinkService service(&pair_, alex.get(), alex_config_, config);
  const ServiceReport report = service.Run();

  EXPECT_EQ(report.ops, config.num_clients * config.ops_per_client);
  EXPECT_EQ(report.queries, report.ops - report.shed);
  EXPECT_LE(report.answered + report.degraded + report.failed,
            report.queries);
  EXPECT_GT(report.answered, 0u);
  EXPECT_GT(report.feedback_items, 0u);
  EXPECT_GT(report.committed_episodes, 0u);
  EXPECT_EQ(report.epochs_published,
            static_cast<uint64_t>(report.committed_episodes));
  EXPECT_EQ(service.admission().shed(), report.shed);
  EXPECT_EQ(service.admission().in_flight(), 0u);
  EXPECT_GT(report.latency.count, 0u);
  EXPECT_GE(report.latency.p99_seconds, report.latency.p50_seconds);
}

}  // namespace
}  // namespace alex::svc
