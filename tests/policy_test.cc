#include "core/policy.h"

#include <set>

#include <gtest/gtest.h>

namespace alex::core {
namespace {

FeatureSet Actions(std::initializer_list<std::pair<FeatureKey, double>> fs) {
  FeatureSet out;
  for (const auto& [key, score] : fs) out.push_back(FeatureValue{key, score});
  return out;
}

TEST(PolicyTest, EmptyActionsReturnsNullopt) {
  EpsilonGreedyPolicy policy(0.1, 1);
  EXPECT_FALSE(policy.ChooseAction(1, {}).has_value());
}

TEST(PolicyTest, SingleActionAlwaysChosen) {
  EpsilonGreedyPolicy policy(0.5, 2);
  FeatureSet actions = Actions({{10, 0.9}});
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(policy.ChooseAction(7, actions), std::optional<FeatureKey>(10));
  }
}

TEST(PolicyTest, RecordReturnUpdatesQ) {
  EpsilonGreedyPolicy policy(0.0, 3);
  StateAction sa{5, 10};
  EXPECT_FALSE(policy.Q(sa).has_value());
  policy.RecordReturn(sa, 1.0);
  EXPECT_DOUBLE_EQ(*policy.Q(sa), 1.0);
  policy.RecordReturn(sa, -1.0);
  EXPECT_DOUBLE_EQ(*policy.Q(sa), 0.0);  // Average of {1, -1}.
  policy.RecordReturn(sa, -1.0);
  EXPECT_NEAR(*policy.Q(sa), -1.0 / 3, 1e-12);
}

TEST(PolicyTest, GlobalQAggregatesAcrossStates) {
  EpsilonGreedyPolicy policy(0.0, 4);
  policy.RecordReturn(StateAction{1, 10}, 1.0);
  policy.RecordReturn(StateAction{2, 10}, -1.0);
  EXPECT_DOUBLE_EQ(*policy.GlobalQ(10), 0.0);
  EXPECT_FALSE(policy.GlobalQ(11).has_value());
}

TEST(PolicyTest, GreedyChoosesBestStateQ) {
  EpsilonGreedyPolicy policy(0.0, 5);  // epsilon 0: always greedy.
  policy.RecordReturn(StateAction{1, 10}, -1.0);
  policy.RecordReturn(StateAction{1, 20}, 1.0);
  FeatureSet actions = Actions({{10, 0.9}, {20, 0.8}});
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(policy.ChooseAction(1, actions), std::optional<FeatureKey>(20));
  }
}

TEST(PolicyTest, GlobalPriorUsedForUnvisitedStates) {
  EpsilonGreedyPolicy policy(0.0, 6);
  // Feature 10 is globally bad, 20 globally good — learned at other states.
  policy.RecordReturn(StateAction{99, 10}, -1.0);
  policy.RecordReturn(StateAction{98, 20}, 1.0);
  FeatureSet actions = Actions({{10, 0.9}, {20, 0.8}});
  // State 1 never seen: falls back to global knowledge.
  EXPECT_EQ(policy.ChooseAction(1, actions), std::optional<FeatureKey>(20));
}

TEST(PolicyTest, ActionPriorOrdersColdStart) {
  EpsilonGreedyPolicy policy(0.0, 7);
  FeatureSet actions = Actions({{10, 0.9}, {20, 0.8}, {30, 0.7}});
  auto prior = [](FeatureKey key) {
    return key == 20 ? 0.4 : 0.1;  // Feature 20 is most selective.
  };
  EXPECT_EQ(policy.ChooseAction(1, actions, prior),
            std::optional<FeatureKey>(20));
}

TEST(PolicyTest, LearnedNegativeBeatsUnknownOnlyWhenPriorLower) {
  EpsilonGreedyPolicy policy(0.0, 8);
  policy.RecordReturn(StateAction{50, 10}, -1.0);  // Global: 10 is bad.
  FeatureSet actions = Actions({{10, 0.9}, {20, 0.8}});
  auto prior = [](FeatureKey) { return 0.25; };
  // Unknown 20 (prior 0.25) beats known-bad 10 (-1).
  EXPECT_EQ(policy.ChooseAction(1, actions, prior),
            std::optional<FeatureKey>(20));
}

TEST(PolicyTest, EpsilonOneIsUniformlyRandom) {
  EpsilonGreedyPolicy policy(1.0, 9);
  policy.RecordReturn(StateAction{1, 10}, 1.0);  // Greedy would pick 10.
  FeatureSet actions = Actions({{10, 0.9}, {20, 0.8}, {30, 0.7}});
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 3000; ++i) {
    FeatureKey a = *policy.ChooseAction(1, actions);
    ++counts[(a / 10) - 1];
  }
  for (int c : counts) EXPECT_NEAR(c, 1000, 150);
}

TEST(PolicyTest, ImproveRecordsGreedyAction) {
  EpsilonGreedyPolicy policy(0.0, 10);
  policy.RecordReturn(StateAction{1, 10}, -1.0);
  policy.RecordReturn(StateAction{1, 20}, 1.0);
  EXPECT_FALSE(policy.GreedyAction(1).has_value());
  policy.Improve({1});
  EXPECT_EQ(policy.GreedyAction(1), std::optional<FeatureKey>(20));
  EXPECT_EQ(policy.num_states(), 1u);
}

TEST(PolicyTest, ImproveOnlyTouchesEpisodeStates) {
  EpsilonGreedyPolicy policy(0.0, 11);
  policy.RecordReturn(StateAction{1, 10}, 1.0);
  policy.RecordReturn(StateAction{2, 20}, 1.0);
  policy.Improve({1});
  EXPECT_TRUE(policy.GreedyAction(1).has_value());
  EXPECT_FALSE(policy.GreedyAction(2).has_value());
}

TEST(PolicyTest, GreedyActionPersistsAcrossEpisodesUntilReimproved) {
  EpsilonGreedyPolicy policy(0.0, 12);
  policy.RecordReturn(StateAction{1, 10}, 1.0);
  policy.Improve({1});
  EXPECT_EQ(policy.GreedyAction(1), std::optional<FeatureKey>(10));
  // New evidence flips the preference after the next improvement.
  policy.RecordReturn(StateAction{1, 10}, -1.0);
  policy.RecordReturn(StateAction{1, 10}, -1.0);
  policy.RecordReturn(StateAction{1, 20}, 1.0);
  policy.Improve({1});
  EXPECT_EQ(policy.GreedyAction(1), std::optional<FeatureKey>(20));
}

TEST(PolicyTest, RecordedGreedyActionWinsOverScores) {
  EpsilonGreedyPolicy policy(0.0, 13);
  policy.RecordReturn(StateAction{1, 10}, 1.0);
  policy.Improve({1});
  // Even with a tempting prior elsewhere, the improved policy is followed.
  FeatureSet actions = Actions({{10, 0.9}, {20, 0.8}});
  auto prior = [](FeatureKey) { return 0.5; };
  EXPECT_EQ(policy.ChooseAction(1, actions, prior),
            std::optional<FeatureKey>(10));
}

TEST(PolicyTest, TieBreakingExploresAllEqualActions) {
  EpsilonGreedyPolicy policy(0.0, 14);
  FeatureSet actions = Actions({{10, 0.9}, {20, 0.8}, {30, 0.7}});
  std::set<FeatureKey> chosen;
  for (int i = 0; i < 200; ++i) {
    chosen.insert(*policy.ChooseAction(1, actions));
  }
  EXPECT_EQ(chosen.size(), 3u);  // All zero-prior actions get drawn.
}

TEST(PolicyTest, GlobalActionValuesSortedDescending) {
  EpsilonGreedyPolicy policy(0.0, 16);
  policy.RecordReturn(StateAction{1, 10}, -1.0);
  policy.RecordReturn(StateAction{2, 20}, 1.0);
  policy.RecordReturn(StateAction{3, 30}, 1.0);
  policy.RecordReturn(StateAction{4, 30}, -1.0);
  auto values = policy.GlobalActionValues();
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[0].first, 20u);
  EXPECT_DOUBLE_EQ(values[0].second, 1.0);
  EXPECT_EQ(values[1].first, 30u);
  EXPECT_DOUBLE_EQ(values[1].second, 0.0);
  EXPECT_EQ(values[2].first, 10u);
  EXPECT_DOUBLE_EQ(values[2].second, -1.0);
}

TEST(PolicyTest, GlobalActionValuesEmptyInitially) {
  EpsilonGreedyPolicy policy(0.0, 17);
  EXPECT_TRUE(policy.GlobalActionValues().empty());
}

TEST(PolicyTest, SetEpsilonTakesEffect) {
  EpsilonGreedyPolicy policy(1.0, 15);
  policy.RecordReturn(StateAction{1, 10}, 1.0);
  policy.set_epsilon(0.0);
  EXPECT_DOUBLE_EQ(policy.epsilon(), 0.0);
  FeatureSet actions = Actions({{10, 0.9}, {20, 0.8}});
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(policy.ChooseAction(1, actions), std::optional<FeatureKey>(10));
  }
}

TEST(PolicyTest, GlobalActionValuesBreaksValueTiesByKey) {
  // Regression: equal-valued features must rank by ascending key. The old
  // value-only unstable sort fed from an unordered_map left their relative
  // order to the hash table's iteration history, so two runs (or two
  // standard libraries) could report different rankings for identical
  // learned state.
  EpsilonGreedyPolicy policy(0.1, 17);
  // Three features with the exact same average return, interleaved with a
  // better and a worse one; insertion order deliberately scrambled.
  policy.RecordReturn(StateAction{1, 30}, 0.5);
  policy.RecordReturn(StateAction{1, 10}, 0.5);
  policy.RecordReturn(StateAction{2, 99}, 1.0);
  policy.RecordReturn(StateAction{1, 20}, 0.5);
  policy.RecordReturn(StateAction{2, 7}, -1.0);

  const auto ranked = policy.GlobalActionValues();
  ASSERT_EQ(ranked.size(), 5u);
  EXPECT_EQ(ranked[0].first, 99u);
  EXPECT_EQ(ranked[1].first, 10u);  // Tied at 0.5: ascending key order.
  EXPECT_EQ(ranked[2].first, 20u);
  EXPECT_EQ(ranked[3].first, 30u);
  EXPECT_EQ(ranked[4].first, 7u);
}

TEST(PolicyTest, RegistryCreatesDefaultAndRejectsUnknown) {
  AlexConfig config;
  config.epsilon = 0.35;
  auto policy =
      PolicyRegistry::Global().Create(kDefaultPolicyTag, config, 11);
  ASSERT_TRUE(policy.ok()) << policy.status();
  EXPECT_EQ((*policy)->type_tag(), kDefaultPolicyTag);
  EXPECT_DOUBLE_EQ((*policy)->epsilon(), 0.35);

  auto unknown = PolicyRegistry::Global().Create("softmax", config, 11);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
  EXPECT_NE(unknown.status().message().find("softmax"), std::string::npos);
  EXPECT_NE(unknown.status().message().find("epsilon-greedy"),
            std::string::npos);
}

TEST(PolicyTest, StateActionHashSpreadsLowBits) {
  // The hash is truncated to size_t by the container; on 32-bit targets
  // only the low word survives. The splitmix-style finalizer must push
  // entropy from the high-bit-only structure of packed keys into the low
  // 32 bits — without it, states differing only in the left EntityId
  // (high half of PairKey) collide catastrophically after truncation.
  StateActionHash hash;
  std::set<uint32_t> low_words;
  constexpr int kStates = 64;
  constexpr int kActions = 16;
  for (uint64_t l = 0; l < kStates; ++l) {
    for (uint64_t a = 0; a < kActions; ++a) {
      // States vary only in the high 32 bits; actions only in the high
      // 32 bits of FeatureKey — worst case for a truncating hash.
      StateAction sa{l << 32, a << 32};
      low_words.insert(static_cast<uint32_t>(hash(sa) & 0xffffffffULL));
    }
  }
  // All distinct inputs should land on distinct low words; allow a tiny
  // budget for genuine 32-bit birthday collisions (expected ~0.1 here).
  EXPECT_GE(low_words.size(), static_cast<size_t>(kStates * kActions - 2));
}

}  // namespace
}  // namespace alex::core
