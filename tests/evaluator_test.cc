#include "sparql/evaluator.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "sparql/parser.h"

namespace alex::sparql {
namespace {

using rdf::Term;

class EvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_.AddLiteralTriple("http://x/alice", "http://x/name",
                         Term::Literal("Alice"));
    ds_.AddLiteralTriple("http://x/alice", "http://x/age",
                         Term::TypedLiteral("30", std::string(rdf::kXsdInteger)));
    ds_.AddLiteralTriple("http://x/bob", "http://x/name", Term::Literal("Bob"));
    ds_.AddLiteralTriple("http://x/bob", "http://x/age",
                         Term::TypedLiteral("25", std::string(rdf::kXsdInteger)));
    ds_.AddIriTriple("http://x/alice", "http://x/knows", "http://x/bob");
    ds_.AddIriTriple("http://x/bob", "http://x/knows", "http://x/carol");
    ds_.AddLiteralTriple("http://x/carol", "http://x/name",
                         Term::Literal("Carol"));
    ds_.AddIriTriple("http://x/alice", std::string(rdf::kRdfType),
                     "http://x/Person");
    ds_.AddIriTriple("http://x/bob", std::string(rdf::kRdfType),
                     "http://x/Person");
  }

  QueryResult Run(const std::string& q) {
    auto r = EvaluateQuery(q, ds_);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ValueOr(QueryResult{});
  }

  rdf::Dataset ds_{"people"};
};

TEST_F(EvaluatorTest, SinglePattern) {
  QueryResult r = Run("SELECT ?s WHERE { ?s <http://x/name> ?n . }");
  EXPECT_EQ(r.NumRows(), 3u);
}

TEST_F(EvaluatorTest, ConstantObject) {
  QueryResult r =
      Run("SELECT ?s WHERE { ?s <http://x/name> \"Alice\" . }");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows[0][0], Term::Iri("http://x/alice"));
}

TEST_F(EvaluatorTest, JoinAcrossPatterns) {
  QueryResult r = Run(
      "SELECT ?n WHERE { <http://x/alice> <http://x/knows> ?f . "
      "?f <http://x/name> ?n . }");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows[0][0], Term::Literal("Bob"));
}

TEST_F(EvaluatorTest, TwoHopJoin) {
  QueryResult r = Run(
      "SELECT ?n WHERE { ?a <http://x/knows> ?b . ?b <http://x/knows> ?c . "
      "?c <http://x/name> ?n . }");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows[0][0], Term::Literal("Carol"));
}

TEST_F(EvaluatorTest, FilterNumericComparison) {
  QueryResult r = Run(
      "SELECT ?s WHERE { ?s <http://x/age> ?a . FILTER(?a > 26) }");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows[0][0], Term::Iri("http://x/alice"));
}

TEST_F(EvaluatorTest, FilterEqualityOnString) {
  QueryResult r = Run(
      "SELECT ?s WHERE { ?s <http://x/name> ?n . FILTER(?n = \"Bob\") }");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows[0][0], Term::Iri("http://x/bob"));
}

TEST_F(EvaluatorTest, FilterNotEqual) {
  QueryResult r = Run(
      "SELECT ?s WHERE { ?s <http://x/name> ?n . FILTER(?n != \"Bob\") }");
  EXPECT_EQ(r.NumRows(), 2u);
}

TEST_F(EvaluatorTest, TypePatternWithA) {
  QueryResult r = Run("SELECT ?s WHERE { ?s a <http://x/Person> . }");
  EXPECT_EQ(r.NumRows(), 2u);
}

TEST_F(EvaluatorTest, SelectStarBindsAllVariables) {
  QueryResult r = Run("SELECT * WHERE { ?s <http://x/age> ?a . }");
  EXPECT_EQ(r.variables, (std::vector<std::string>{"s", "a"}));
  EXPECT_EQ(r.NumRows(), 2u);
}

TEST_F(EvaluatorTest, Limit) {
  QueryResult r = Run("SELECT ?s WHERE { ?s <http://x/name> ?n . } LIMIT 2");
  EXPECT_EQ(r.NumRows(), 2u);
}

TEST_F(EvaluatorTest, Distinct) {
  // ?s of both patterns; without DISTINCT alice yields one row per
  // (name, knows) combination.
  QueryResult with_distinct = Run(
      "SELECT DISTINCT ?s WHERE { ?s <http://x/name> ?n . "
      "?s <http://x/knows> ?f . }");
  EXPECT_EQ(with_distinct.NumRows(), 2u);  // alice, bob.
}

TEST_F(EvaluatorTest, RepeatedVariableInPattern) {
  // No triple has subject == object here.
  QueryResult r = Run("SELECT ?s WHERE { ?s <http://x/knows> ?s . }");
  EXPECT_EQ(r.NumRows(), 0u);
  ds_.AddIriTriple("http://x/dave", "http://x/knows", "http://x/dave");
  QueryResult r2 = Run("SELECT ?s WHERE { ?s <http://x/knows> ?s . }");
  ASSERT_EQ(r2.NumRows(), 1u);
  EXPECT_EQ(r2.rows[0][0], Term::Iri("http://x/dave"));
}

TEST_F(EvaluatorTest, UnknownConstantYieldsNoRows) {
  QueryResult r = Run("SELECT ?s WHERE { ?s <http://x/missing> ?o . }");
  EXPECT_EQ(r.NumRows(), 0u);
}

TEST_F(EvaluatorTest, ProjectionMustBeMentioned) {
  auto r = EvaluateQuery("SELECT ?zz WHERE { ?s ?p ?o . }", ds_);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EvaluatorTest, CartesianProductOfDisconnectedPatterns) {
  QueryResult r = Run(
      "SELECT ?a ?b WHERE { ?a <http://x/knows> ?x . "
      "?b <http://x/age> ?y . }");
  EXPECT_EQ(r.NumRows(), 4u);  // 2 knows-edges x 2 age-subjects.
}

TEST_F(EvaluatorTest, OrderByAscending) {
  QueryResult r = Run(
      "SELECT ?s ?a WHERE { ?s <http://x/age> ?a . } ORDER BY ?a");
  ASSERT_EQ(r.NumRows(), 2u);
  EXPECT_EQ(r.rows[0][0], Term::Iri("http://x/bob"));    // age 25.
  EXPECT_EQ(r.rows[1][0], Term::Iri("http://x/alice"));  // age 30.
}

TEST_F(EvaluatorTest, OrderByDescendingWithLimit) {
  QueryResult r = Run(
      "SELECT ?s ?a WHERE { ?s <http://x/age> ?a . } ORDER BY DESC ?a "
      "LIMIT 1");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows[0][0], Term::Iri("http://x/alice"));
}

TEST_F(EvaluatorTest, OrderByStringColumn) {
  QueryResult r =
      Run("SELECT ?n WHERE { ?s <http://x/name> ?n . } ORDER BY ?n");
  ASSERT_EQ(r.NumRows(), 3u);
  EXPECT_EQ(r.rows[0][0], Term::Literal("Alice"));
  EXPECT_EQ(r.rows[2][0], Term::Literal("Carol"));
}

TEST_F(EvaluatorTest, OrderByUnprojectedVariableFails) {
  auto r = EvaluateQuery(
      "SELECT ?s WHERE { ?s <http://x/age> ?a . } ORDER BY ?zz", ds_);
  EXPECT_FALSE(r.ok());
}

TEST_F(EvaluatorTest, AskQueries) {
  auto yes = AskQuery("ASK { ?s <http://x/name> \"Alice\" . }", ds_);
  ASSERT_TRUE(yes.ok()) << yes.status();
  EXPECT_TRUE(*yes);
  auto no = AskQuery("ASK WHERE { ?s <http://x/name> \"Zelda\" . }", ds_);
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(*no);
  auto filtered =
      AskQuery("ASK { ?s <http://x/age> ?a . FILTER(?a > 99) }", ds_);
  ASSERT_TRUE(filtered.ok());
  EXPECT_FALSE(*filtered);
}

TEST_F(EvaluatorTest, AskParsesViaIsAskFlag) {
  auto q = ParseQuery("ASK { ?s ?p ?o . }");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->is_ask);
  EXPECT_TRUE(q->projection.empty());
}

TEST_F(EvaluatorTest, OptionalExtendsWhenPossible) {
  QueryResult r = Run(
      "SELECT ?s ?f WHERE { ?s <http://x/name> ?n . "
      "OPTIONAL { ?s <http://x/knows> ?f . } } ORDER BY ?s");
  ASSERT_EQ(r.NumRows(), 3u);
  // alice and bob have friends; carol keeps an unbound (empty) ?f.
  EXPECT_EQ(r.rows[0][0], Term::Iri("http://x/alice"));
  EXPECT_EQ(r.rows[0][1], Term::Iri("http://x/bob"));
  EXPECT_EQ(r.rows[1][0], Term::Iri("http://x/bob"));
  EXPECT_EQ(r.rows[1][1], Term::Iri("http://x/carol"));
  EXPECT_EQ(r.rows[2][0], Term::Iri("http://x/carol"));
  EXPECT_EQ(r.rows[2][1], Term::Literal(""));
}

TEST_F(EvaluatorTest, OptionalFilterScopesToBlock) {
  // The filter inside OPTIONAL rejects the extension, not the base row.
  QueryResult r = Run(
      "SELECT ?s ?a WHERE { ?s <http://x/name> ?n . "
      "OPTIONAL { ?s <http://x/age> ?a . FILTER(?a > 28) } } ORDER BY ?s");
  ASSERT_EQ(r.NumRows(), 3u);
  EXPECT_EQ(r.rows[0][1],
            Term::TypedLiteral("30", std::string(rdf::kXsdInteger)));
  EXPECT_EQ(r.rows[1][1], Term::Literal(""));  // bob, age 25 filtered out.
  EXPECT_EQ(r.rows[2][1], Term::Literal(""));  // carol has no age.
}

TEST_F(EvaluatorTest, ChainedOptionals) {
  QueryResult r = Run(
      "SELECT ?s ?a ?f WHERE { ?s <http://x/name> ?n . "
      "OPTIONAL { ?s <http://x/age> ?a . } "
      "OPTIONAL { ?s <http://x/knows> ?f . } }");
  EXPECT_EQ(r.NumRows(), 3u);
}

TEST_F(EvaluatorTest, UnionConcatenatesBranches) {
  QueryResult r = Run(
      "SELECT ?s WHERE { { ?s <http://x/age> ?a . } UNION "
      "{ ?s <http://x/knows> ?f . } }");
  EXPECT_EQ(r.NumRows(), 4u);  // 2 age rows + 2 knows rows.
}

TEST_F(EvaluatorTest, UnionWithDistinctDeduplicates) {
  QueryResult r = Run(
      "SELECT DISTINCT ?s WHERE { { ?s <http://x/age> ?a . } UNION "
      "{ ?s <http://x/name> ?n . } }");
  EXPECT_EQ(r.NumRows(), 3u);  // alice, bob, carol.
}

TEST_F(EvaluatorTest, ThreeWayUnion) {
  QueryResult r = Run(
      "SELECT ?s WHERE { { ?s <http://x/age> ?a . } UNION "
      "{ ?s <http://x/knows> ?f . } UNION { ?s a <http://x/Person> . } }");
  EXPECT_EQ(r.NumRows(), 6u);
}

TEST_F(EvaluatorTest, UnionBranchVariablesAreIndependent) {
  QueryResult r = Run(
      "SELECT ?a ?f WHERE { { ?s <http://x/age> ?a . } UNION "
      "{ ?s <http://x/knows> ?f . } }");
  ASSERT_EQ(r.NumRows(), 4u);
  // Rows from the age branch leave ?f unbound and vice versa.
  size_t empty_cells = 0;
  for (const auto& row : r.rows) {
    for (const Term& t : row) {
      if (t == Term::Literal("")) ++empty_cells;
    }
  }
  EXPECT_EQ(empty_cells, 4u);
}

TEST_F(EvaluatorTest, CountAllRows) {
  QueryResult r = Run("SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o . }");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.variables, std::vector<std::string>{"n"});
  EXPECT_EQ(r.rows[0][0],
            Term::TypedLiteral("9", std::string(rdf::kXsdInteger)));
}

TEST_F(EvaluatorTest, CountVariableSkipsUnbound) {
  // With OPTIONAL, carol has no ?f: COUNT(?f) counts 2 of the 3 rows.
  QueryResult r = Run(
      "SELECT (COUNT(?f) AS ?n) WHERE { ?s <http://x/name> ?x . "
      "OPTIONAL { ?s <http://x/knows> ?f . } }");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows[0][0],
            Term::TypedLiteral("2", std::string(rdf::kXsdInteger)));
}

TEST_F(EvaluatorTest, GroupByCountsPerGroup) {
  ds_.AddIriTriple("http://x/alice", "http://x/knows", "http://x/carol");
  QueryResult r = Run(
      "SELECT ?s (COUNT(?f) AS ?n) WHERE { ?s <http://x/knows> ?f . } "
      "GROUP BY ?s ORDER BY DESC ?n");
  ASSERT_EQ(r.NumRows(), 2u);
  EXPECT_EQ(r.variables, (std::vector<std::string>{"s", "n"}));
  EXPECT_EQ(r.rows[0][0], Term::Iri("http://x/alice"));
  EXPECT_EQ(r.rows[0][1],
            Term::TypedLiteral("2", std::string(rdf::kXsdInteger)));
  EXPECT_EQ(r.rows[1][1],
            Term::TypedLiteral("1", std::string(rdf::kXsdInteger)));
}

TEST_F(EvaluatorTest, CountZeroOnEmptyMatch) {
  QueryResult r =
      Run("SELECT (COUNT(*) AS ?n) WHERE { ?s <http://x/missing> ?o . }");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows[0][0],
            Term::TypedLiteral("0", std::string(rdf::kXsdInteger)));
}

TEST_F(EvaluatorTest, AggregateParseErrors) {
  EXPECT_FALSE(
      EvaluateQuery("SELECT (COUNT(?x AS ?n) WHERE { ?s ?p ?o . }", ds_).ok());
  EXPECT_FALSE(
      EvaluateQuery("SELECT (COUNT(?x) ?n) WHERE { ?s ?p ?o . }", ds_).ok());
  // Grouping var projected but no GROUP BY.
  EXPECT_FALSE(EvaluateQuery(
                   "SELECT ?s (COUNT(*) AS ?n) WHERE { ?s ?p ?o . }", ds_)
                   .ok());
  // GROUP BY names a different variable.
  EXPECT_FALSE(
      EvaluateQuery("SELECT ?s (COUNT(*) AS ?n) WHERE { ?s ?p ?o . } "
                    "GROUP BY ?p",
                    ds_)
          .ok());
  // Counted variable not mentioned.
  EXPECT_FALSE(
      EvaluateQuery("SELECT (COUNT(?zz) AS ?n) WHERE { ?s ?p ?o . }", ds_)
          .ok());
}

TEST(CompareTermsTest, NumericAndLexicographic) {
  EXPECT_TRUE(CompareTerms(Term::Literal("9"), CompareOp::kLt,
                           Term::Literal("10")));  // Numeric, not lexicographic.
  EXPECT_TRUE(CompareTerms(Term::Literal("apple"), CompareOp::kLt,
                           Term::Literal("banana")));
  EXPECT_TRUE(CompareTerms(Term::Literal("2000-01-02"), CompareOp::kGt,
                           Term::Literal("2000-01-01")));
  EXPECT_TRUE(
      CompareTerms(Term::Literal("x"), CompareOp::kEq, Term::Literal("x")));
  EXPECT_TRUE(
      CompareTerms(Term::Literal("x"), CompareOp::kNe, Term::Literal("y")));
  EXPECT_TRUE(CompareTerms(Term::Literal("5"), CompareOp::kLe,
                           Term::Literal("5.0")));
  EXPECT_TRUE(CompareTerms(Term::Literal("5"), CompareOp::kGe,
                           Term::Literal("5")));
}

}  // namespace
}  // namespace alex::sparql
