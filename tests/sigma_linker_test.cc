#include "paris/sigma.h"

#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "datagen/scenarios.h"
#include "paris/seed_linkers.h"
#include "rdf/dataset.h"

namespace alex::paris {
namespace {

/// Two tiny KBs with obvious name evidence. Entities a/b/c on the left
/// correspond to x/y/z on the right by shared literal values.
void BuildToyPair(rdf::Dataset* left, rdf::Dataset* right) {
  const std::string name = "http://ex.org/name";
  left->AddLiteralTriple("http://l/a", name,
                         rdf::Term::Literal("alpha centauri"));
  left->AddLiteralTriple("http://l/b", name, rdf::Term::Literal("beta pictoris"));
  left->AddLiteralTriple("http://l/c", name, rdf::Term::Literal("gamma draconis"));
  right->AddLiteralTriple("http://r/x", name,
                          rdf::Term::Literal("alpha centauri"));
  right->AddLiteralTriple("http://r/y", name,
                          rdf::Term::Literal("beta pictoris"));
  right->AddLiteralTriple("http://r/z", name,
                          rdf::Term::Literal("gamma draconis"));
  left->BuildEntityIndex();
  right->BuildEntityIndex();
}

TEST(SigmaLinker, MatchesByStringEvidence) {
  rdf::Dataset left("left"), right("right");
  BuildToyPair(&left, &right);

  SigmaLinker linker(&left, &right);
  const std::vector<ScoredLink> links = linker.Run();
  ASSERT_EQ(links.size(), 3u);
  for (const ScoredLink& link : links) {
    // Toy IRIs are interned in order, so entity ids correspond 1:1.
    EXPECT_EQ(link.left, link.right);
    EXPECT_GT(link.score, 0.0);
  }
  // Output is sorted by (left, right).
  EXPECT_TRUE(std::is_sorted(links.begin(), links.end(),
                             [](const ScoredLink& a, const ScoredLink& b) {
                               return a.left < b.left ||
                                      (a.left == b.left && a.right < b.right);
                             }));
}

TEST(SigmaLinker, GreedyMatchingIsOneToOne) {
  datagen::ScenarioConfig scenario = datagen::DbpediaSwdf();
  auto data = datagen::GenerateScenario(scenario);
  SigmaLinker linker(&data.left, &data.right);
  const std::vector<ScoredLink> links = linker.Run();
  ASSERT_FALSE(links.empty());

  std::vector<rdf::EntityId> lefts, rights;
  for (const ScoredLink& link : links) {
    lefts.push_back(link.left);
    rights.push_back(link.right);
  }
  std::sort(lefts.begin(), lefts.end());
  std::sort(rights.begin(), rights.end());
  EXPECT_EQ(std::adjacent_find(lefts.begin(), lefts.end()), lefts.end());
  EXPECT_EQ(std::adjacent_find(rights.begin(), rights.end()), rights.end());
}

TEST(SigmaLinker, DeterministicAcrossRuns) {
  datagen::ScenarioConfig scenario = datagen::DbpediaSwdf();
  scenario.relation_density = 1.5;
  auto data = datagen::GenerateScenario(scenario);

  SigmaLinker a(&data.left, &data.right);
  SigmaLinker b(&data.left, &data.right);
  const std::vector<ScoredLink> la = a.Run();
  const std::vector<ScoredLink> lb = b.Run();
  ASSERT_EQ(la.size(), lb.size());
  for (size_t i = 0; i < la.size(); ++i) {
    EXPECT_EQ(la[i].left, lb[i].left);
    EXPECT_EQ(la[i].right, lb[i].right);
    EXPECT_EQ(la[i].score, lb[i].score);
  }
}

TEST(SigmaLinker, PropagationRecoversNoisyNeighbors) {
  // A scenario with heavy value noise and an entity-relation layer: the
  // graph term must help, not hurt — quality with propagation enabled must
  // be at least as good as with it disabled on the same pair.
  datagen::ScenarioConfig scenario = datagen::DbpediaSwdf();
  scenario.relation_density = 2.0;
  scenario.value_noise = 0.5;
  auto data = datagen::GenerateScenario(scenario);

  auto correct = [&](const std::vector<ScoredLink>& links) {
    size_t n = 0;
    for (const ScoredLink& link : links) {
      if (data.truth.Contains(feedback::PackPair(link.left, link.right))) ++n;
    }
    return n;
  };

  SigmaConfig no_prop;
  no_prop.propagation_weight = 0.0;
  SigmaLinker flat(&data.left, &data.right, no_prop);
  const size_t correct_flat = correct(flat.Run());

  SigmaLinker prop(&data.left, &data.right);
  const size_t correct_prop = correct(prop.Run());

  EXPECT_GE(correct_prop, correct_flat);
  EXPECT_GT(correct_prop, 0u);
}

TEST(SigmaLinker, EmptyDatasetsYieldNoLinks) {
  rdf::Dataset left("left"), right("right");
  left.BuildEntityIndex();
  right.BuildEntityIndex();
  SigmaLinker linker(&left, &right);
  EXPECT_TRUE(linker.Run().empty());
}

TEST(SeedLinkerFactory, BuildsKnownTagsAndRejectsUnknown) {
  rdf::Dataset left("left"), right("right");
  BuildToyPair(&left, &right);

  auto paris = MakeSeedLinker(kParisLinkerTag, &left, &right);
  ASSERT_TRUE(paris.ok());
  EXPECT_EQ((*paris)->type_tag(), kParisLinkerTag);

  auto sigma = MakeSeedLinker(kSigmaLinkerTag, &left, &right);
  ASSERT_TRUE(sigma.ok());
  EXPECT_EQ((*sigma)->type_tag(), kSigmaLinkerTag);

  auto unknown = MakeSeedLinker("silk", &left, &right);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
  EXPECT_NE(unknown.status().message().find("silk"), std::string::npos);
  EXPECT_NE(unknown.status().message().find("paris"), std::string::npos);
  EXPECT_NE(unknown.status().message().find("sigma"), std::string::npos);
}

TEST(SeedLinkerFactory, FactoryOutputMatchesDirectRun) {
  datagen::ScenarioConfig scenario = datagen::DbpediaSwdf();
  auto data = datagen::GenerateScenario(scenario);

  SigmaLinker direct(&data.left, &data.right);
  const std::vector<ScoredLink> expected = direct.Run();

  auto via_factory = MakeSeedLinker(kSigmaLinkerTag, &data.left, &data.right);
  ASSERT_TRUE(via_factory.ok());
  const std::vector<ScoredLink> actual = (*via_factory)->Run();
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].left, expected[i].left);
    EXPECT_EQ(actual[i].right, expected[i].right);
  }
}

}  // namespace
}  // namespace alex::paris
