#include "similarity/value.h"

#include <gtest/gtest.h>

namespace alex::sim {
namespace {

using rdf::Term;

TEST(IriLocalNameTest, Variants) {
  EXPECT_EQ(IriLocalName("http://x/path/Name"), "Name");
  EXPECT_EQ(IriLocalName("http://x/ont#frag"), "frag");
  EXPECT_EQ(IriLocalName("plain"), "plain");
  // A trailing '#' has no fragment to return; the last path segment
  // (including the '#') is used instead.
  EXPECT_EQ(IriLocalName("http://x/a#"), "a#");
}

TEST(DaysFromCivilTest, KnownDates) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
  EXPECT_EQ(DaysFromCivil(1970, 1, 2), 1);
  EXPECT_EQ(DaysFromCivil(1969, 12, 31), -1);
  EXPECT_EQ(DaysFromCivil(2000, 3, 1), 11017);
  EXPECT_EQ(DaysFromCivil(2024, 2, 29), 19782);  // Leap day.
}

TEST(ParseIsoDateTest, ValidDates) {
  int32_t days = 0;
  ASSERT_TRUE(ParseIsoDate("1970-01-01", &days));
  EXPECT_EQ(days, 0);
  ASSERT_TRUE(ParseIsoDate("2000-02-29", &days));  // Leap year.
  EXPECT_EQ(days, DaysFromCivil(2000, 2, 29));
}

TEST(ParseIsoDateTest, Malformed) {
  int32_t days = 0;
  EXPECT_FALSE(ParseIsoDate("1970/01/01", &days));
  EXPECT_FALSE(ParseIsoDate("1970-1-1", &days));
  EXPECT_FALSE(ParseIsoDate("1970-13-01", &days));
  EXPECT_FALSE(ParseIsoDate("1970-00-10", &days));
  EXPECT_FALSE(ParseIsoDate("1970-01-32", &days));
  EXPECT_FALSE(ParseIsoDate("not-a-date", &days));
  EXPECT_FALSE(ParseIsoDate("", &days));
}

TEST(ParseValueTest, TypedInteger) {
  TypedValue v = ParseValue(
      Term::TypedLiteral("42", std::string(rdf::kXsdInteger)));
  EXPECT_EQ(v.kind, ValueKind::kInteger);
  EXPECT_EQ(v.integer, 42);
  EXPECT_DOUBLE_EQ(v.real, 42.0);
  EXPECT_TRUE(v.is_numeric());
}

TEST(ParseValueTest, TypedDouble) {
  TypedValue v =
      ParseValue(Term::TypedLiteral("3.25", std::string(rdf::kXsdDouble)));
  EXPECT_EQ(v.kind, ValueKind::kDouble);
  EXPECT_DOUBLE_EQ(v.real, 3.25);
}

TEST(ParseValueTest, TypedDate) {
  TypedValue v = ParseValue(
      Term::TypedLiteral("1984-12-30", std::string(rdf::kXsdDate)));
  EXPECT_EQ(v.kind, ValueKind::kDate);
  EXPECT_EQ(v.date_days, DaysFromCivil(1984, 12, 30));
  EXPECT_FALSE(v.is_numeric());
}

TEST(ParseValueTest, SniffsUntypedLexicalForms) {
  EXPECT_EQ(ParseValue(Term::Literal("123")).kind, ValueKind::kInteger);
  EXPECT_EQ(ParseValue(Term::Literal("-5")).kind, ValueKind::kInteger);
  EXPECT_EQ(ParseValue(Term::Literal("1.5")).kind, ValueKind::kDouble);
  EXPECT_EQ(ParseValue(Term::Literal("-0.25")).kind, ValueKind::kDouble);
  EXPECT_EQ(ParseValue(Term::Literal("1999-04-01")).kind, ValueKind::kDate);
  EXPECT_EQ(ParseValue(Term::Literal("hello")).kind, ValueKind::kString);
  EXPECT_EQ(ParseValue(Term::Literal("1.2.3")).kind, ValueKind::kString);
  EXPECT_EQ(ParseValue(Term::Literal("")).kind, ValueKind::kString);
}

TEST(ParseValueTest, IriUsesLocalName) {
  TypedValue v = ParseValue(Term::Iri("http://x/class/Person"));
  EXPECT_EQ(v.kind, ValueKind::kString);
  EXPECT_EQ(v.text, "Person");
}

TEST(ParseValueTest, BlankNodeIsString) {
  TypedValue v = ParseValue(Term::Blank("b1"));
  EXPECT_EQ(v.kind, ValueKind::kString);
  EXPECT_EQ(v.text, "b1");
}

TEST(ParseValueTest, HugeIntegerFallsBackGracefully) {
  // 19+ digits exceed the integer sniffer; must not crash.
  TypedValue v = ParseValue(Term::Literal("12345678901234567890123"));
  EXPECT_EQ(v.kind, ValueKind::kString);
}

/// Property: IsoDate strings written by the generator's formatter parse back
/// to the same day count (round trip through DaysFromCivil).
class CivilDaysRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(CivilDaysRoundTrip, YearBoundaries) {
  const int year = GetParam();
  for (int month : {1, 2, 6, 12}) {
    for (int day : {1, 28}) {
      const int32_t days = DaysFromCivil(year, month, day);
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year, month, day);
      int32_t parsed = 0;
      ASSERT_TRUE(ParseIsoDate(buf, &parsed)) << buf;
      EXPECT_EQ(parsed, days) << buf;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Years, CivilDaysRoundTrip,
                         ::testing::Values(1900, 1970, 1999, 2000, 2024,
                                           2100));

}  // namespace
}  // namespace alex::sim
