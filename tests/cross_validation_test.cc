// Cross-module validation: properties that hold across subsystem
// boundaries (text formats agreeing with each other, the engine's ε decay
// being observable, link-spec quality on generated data, and the result
// serializers fed from real query evaluations).

#include <sstream>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/metrics.h"
#include "datagen/scenarios.h"
#include "paris/link_spec.h"
#include "rdf/binary_io.h"
#include "rdf/ntriples.h"
#include "rdf/turtle.h"
#include "sparql/results_io.h"

namespace alex {
namespace {

TEST(CrossValidationTest, NTriplesOutputIsValidTurtle) {
  // Every N-Triples document is a Turtle document; the two parsers must
  // agree on generated data.
  datagen::ScenarioConfig config;
  config.seed = 31337;
  config.num_shared = 40;
  config.num_left_only = 20;
  config.num_right_only = 10;
  config.domains = {"organization", "language"};
  datagen::GeneratedPair pair = datagen::GenerateScenario(config);

  std::ostringstream text;
  ASSERT_TRUE(
      rdf::WriteNTriples(pair.left.store(), pair.left.dict(), text).ok());

  rdf::Dictionary nt_dict, ttl_dict;
  rdf::TripleStore nt_store, ttl_store;
  std::istringstream nt_in(text.str());
  ASSERT_TRUE(rdf::ReadNTriples(nt_in, &nt_dict, &nt_store).ok());
  ASSERT_TRUE(rdf::ParseTurtle(text.str(), &ttl_dict, &ttl_store).ok());
  ASSERT_EQ(nt_store.size(), ttl_store.size());

  // Same logical triples under both parsers.
  nt_store.ForEachMatch(rdf::TriplePattern{}, [&](const rdf::Triple& t) {
    auto s = ttl_dict.Lookup(nt_dict.term(t.subject));
    auto p = ttl_dict.Lookup(nt_dict.term(t.predicate));
    auto o = ttl_dict.Lookup(nt_dict.term(t.object));
    EXPECT_TRUE(s && p && o);
    if (s && p && o) {
      EXPECT_TRUE(ttl_store.Contains(rdf::Triple{*s, *p, *o}));
    }
    return true;
  });
}

TEST(CrossValidationTest, BinaryAndTextFormatsAgree) {
  datagen::ScenarioConfig config;
  config.seed = 424;
  config.num_shared = 30;
  config.num_left_only = 10;
  config.num_right_only = 10;
  config.domains = {"place"};
  datagen::GeneratedPair pair = datagen::GenerateScenario(config);

  std::ostringstream binary;
  ASSERT_TRUE(rdf::WriteBinaryDataset(pair.right.dict(), pair.right.store(),
                                      binary)
                  .ok());
  rdf::Dictionary dict2;
  rdf::TripleStore store2;
  std::istringstream in(binary.str());
  ASSERT_TRUE(rdf::ReadBinaryDataset(in, &dict2, &store2).ok());

  std::ostringstream text1, text2;
  ASSERT_TRUE(
      rdf::WriteNTriples(pair.right.store(), pair.right.dict(), text1).ok());
  ASSERT_TRUE(rdf::WriteNTriples(store2, dict2, text2).ok());
  EXPECT_EQ(text1.str(), text2.str());
}

TEST(CrossValidationTest, EpsilonDecayIsObservable) {
  // Minimal space; the engine's policy ε must follow the GLIE schedule
  // ε0 / k after k completed episodes (see AlexConfig::epsilon_decay).
  rdf::Dataset left{"l"}, right{"r"};
  left.AddLiteralTriple("http://l/e", "http://l/name",
                        rdf::Term::Literal("Solo Entity"));
  right.AddLiteralTriple("http://r/e", "http://r/name",
                         rdf::Term::Literal("Solo Entity"));
  left.BuildEntityIndex();
  right.BuildEntityIndex();
  core::LinkSpace space;
  space.Build(left, right, {0}, 0.3, 1000);

  core::AlexConfig config;
  config.epsilon = 0.1;
  config.epsilon_decay = true;
  core::AlexEngine engine(&space, config, 3);
  EXPECT_DOUBLE_EQ(engine.policy().epsilon(), 0.1);
  engine.EndEpisode();
  EXPECT_DOUBLE_EQ(engine.policy().epsilon(), 0.1 / 1);
  engine.EndEpisode();
  EXPECT_DOUBLE_EQ(engine.policy().epsilon(), 0.1 / 2);

  core::AlexConfig fixed = config;
  fixed.epsilon_decay = false;
  core::AlexEngine engine2(&space, fixed, 3);
  engine2.EndEpisode();
  EXPECT_DOUBLE_EQ(engine2.policy().epsilon(), 0.1);
}

TEST(CrossValidationTest, LinkSpecQualityOnGeneratedScenario) {
  // A hand-written rule set over the drug domain must land in a sane
  // precision/recall region on the generated Drugbank scenario.
  datagen::GeneratedPair pair =
      datagen::GenerateScenario(datagen::DbpediaDrugbank());
  // A rule author inspects the target vocabulary first: the right KB may
  // use either the canonical or the synonym predicate name.
  auto pick = [&](const char* canonical, const char* synonym) {
    const std::string base = "http://drugbank.example.org/ontology/";
    return pair.right.dict()
                   .Lookup(rdf::Term::Iri(base + canonical))
                   .has_value()
               ? base + canonical
               : base + synonym;
  };
  auto spec = paris::ParseLinkSpec(
      "compare http://dbpedia.example.org/ontology/molecularWeight " +
      pick("molecularWeight", "molWeight") +
      " using numeric\n"
      "compare http://dbpedia.example.org/ontology/approved " +
      pick("approved", "approvalDate") +
      " using date\n"
      "compare http://dbpedia.example.org/ontology/casNumber " +
      pick("casNumber", "casRegistry") +
      " using numeric\n"
      "aggregate min\nthreshold 0.97\n");
  ASSERT_TRUE(spec.ok()) << spec.status();
  auto links = paris::RunLinkSpec(pair.left, pair.right, *spec);
  ASSERT_FALSE(links.empty());
  std::unordered_set<feedback::PairKey> candidates;
  for (const auto& l : links) {
    candidates.insert(feedback::PackPair(l.left, l.right));
  }
  const auto m = core::ComputeMetrics(candidates, pair.truth);
  // Decoys copy the name plus two secondary values; demanding near-exact
  // agreement on all THREE identifying fields defeats them, so precision
  // must be high.
  EXPECT_GT(m.precision, 0.9);
  EXPECT_GT(m.recall, 0.5);
}

TEST(CrossValidationTest, QueryResultsSerializeFromLiveEvaluation) {
  rdf::Dataset ds{"x"};
  ds.AddLiteralTriple("http://x/e1", "http://x/name",
                      rdf::Term::Literal("Alpha"));
  ds.AddLiteralTriple("http://x/e2", "http://x/name",
                      rdf::Term::Literal("Beta"));
  auto result = sparql::EvaluateQuery(
      "SELECT ?s ?n WHERE { ?s <http://x/name> ?n . } ORDER BY ?n", ds);
  ASSERT_TRUE(result.ok());
  std::ostringstream json, tsv;
  sparql::WriteResultsJson(*result, json);
  sparql::WriteResultsTsv(*result, tsv);
  EXPECT_NE(json.str().find("\"value\": \"Alpha\""), std::string::npos);
  EXPECT_NE(tsv.str().find("<http://x/e2>\t\"Beta\""), std::string::npos);
}

}  // namespace
}  // namespace alex
