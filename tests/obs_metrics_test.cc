#include "obs/metrics.h"

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "obs/telemetry.h"

namespace alex::obs {
namespace {

// The registry is process-global and shared across every test in this
// binary; each test uses its own metric names so values never interfere.

TEST(CounterTest, SingleThreadedAddAndValue) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(CounterTest, ConcurrentAddsFromThreadPoolAllLand) {
  // Hammer one counter from every pool worker; sharded cells must not lose
  // any increment regardless of how threads map onto shards.
  Counter counter;
  ThreadPool pool(8);
  constexpr int kTasks = 64;
  constexpr int kAddsPerTask = 10000;
  for (int t = 0; t < kTasks; ++t) {
    pool.Submit([&counter] {
      for (int i = 0; i < kAddsPerTask; ++i) counter.Add();
    });
  }
  pool.Wait();
  EXPECT_EQ(counter.Value(),
            static_cast<uint64_t>(kTasks) * kAddsPerTask);
}

TEST(GaugeTest, SetAddAndMaxTracking) {
  Gauge gauge;
  gauge.Set(5);
  gauge.UpdateMax(5);
  gauge.Add(-2);
  EXPECT_EQ(gauge.Value(), 3);
  EXPECT_EQ(gauge.MaxValue(), 5);
  gauge.UpdateMax(2);  // Lower than current max: ignored.
  EXPECT_EQ(gauge.MaxValue(), 5);
  gauge.UpdateMax(9);
  EXPECT_EQ(gauge.MaxValue(), 9);
}

TEST(GaugeTest, ConcurrentUpdateMaxKeepsTrueMax) {
  Gauge gauge;
  ThreadPool pool(8);
  constexpr int kTasks = 32;
  for (int t = 1; t <= kTasks; ++t) {
    pool.Submit([&gauge, t] {
      for (int i = 0; i < 1000; ++i) gauge.UpdateMax(t * 1000 + i);
    });
  }
  pool.Wait();
  EXPECT_EQ(gauge.MaxValue(), kTasks * 1000 + 999);
}

TEST(HistogramTest, BucketsObservationsByUpperBound) {
  Histogram histogram({0.001, 0.01, 0.1});
  histogram.Observe(0.0005);  // bucket 0 (<= 1ms)
  histogram.Observe(0.001);   // bucket 0 (bounds are inclusive upper)
  histogram.Observe(0.005);   // bucket 1
  histogram.Observe(0.05);    // bucket 2
  histogram.Observe(5.0);     // +inf bucket
  histogram.Observe(-1.0);    // clamped to 0 -> bucket 0

  const HistogramSnapshot snap = histogram.Snapshot();
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 3u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 6u);
  EXPECT_NEAR(snap.sum, 0.0005 + 0.001 + 0.005 + 0.05 + 5.0, 1e-6);
  EXPECT_GT(snap.Mean(), 0.0);
}

TEST(HistogramTest, ConcurrentObservationsAllCounted) {
  Histogram histogram({0.5});
  ThreadPool pool(8);
  constexpr int kTasks = 32;
  constexpr int kObsPerTask = 5000;
  for (int t = 0; t < kTasks; ++t) {
    // Half the observations land below the bound, half above; every task
    // uses the same deterministic split, so the merged buckets are exact.
    pool.Submit([&histogram] {
      for (int i = 0; i < kObsPerTask; ++i) {
        histogram.Observe(i % 2 == 0 ? 0.1 : 1.0);
      }
    });
  }
  pool.Wait();
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kTasks) * kObsPerTask);
  EXPECT_EQ(snap.counts[0], static_cast<uint64_t>(kTasks) * kObsPerTask / 2);
  EXPECT_EQ(snap.counts[1], static_cast<uint64_t>(kTasks) * kObsPerTask / 2);
}

TEST(RegistryTest, LookupIsIdempotentAndHandleStable) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& a = registry.counter("obs_test.idempotent");
  Counter& b = registry.counter("obs_test.idempotent");
  EXPECT_EQ(&a, &b);
  a.Add(7);
  EXPECT_EQ(b.Value(), 7u);
  // ResetForTest zeroes values but must not invalidate the reference.
  registry.ResetForTest();
  EXPECT_EQ(a.Value(), 0u);
  a.Add(1);
  EXPECT_EQ(registry.counter("obs_test.idempotent").Value(), 1u);
}

TEST(RegistryTest, HistogramBoundsFixedByFirstRegistration) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Histogram& h = registry.histogram("obs_test.fixed_bounds", {1.0, 2.0});
  Histogram& again =
      registry.histogram("obs_test.fixed_bounds", {9.0});  // Ignored.
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.Snapshot().bounds, (std::vector<double>{1.0, 2.0}));
}

TEST(RegistryTest, SnapshotMergeIsDeterministic) {
  // Two snapshots taken after identical activity compare equal, and the
  // delta between them is empty activity — regardless of which threads did
  // the work (shards merge on snapshot).
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& counter = registry.counter("obs_test.determinism.counter");
  Histogram& histogram =
      registry.histogram("obs_test.determinism.hist", {0.5});

  ThreadPool pool(4);
  for (int t = 0; t < 16; ++t) {
    pool.Submit([&counter, &histogram] {
      for (int i = 0; i < 1000; ++i) {
        counter.Add();
        histogram.Observe(0.1);
      }
    });
  }
  pool.Wait();

  const MetricsSnapshot first = registry.Snapshot();
  const MetricsSnapshot second = registry.Snapshot();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.counters.at("obs_test.determinism.counter") % 16000, 0u);

  const MetricsSnapshot delta = second.DeltaSince(first);
  EXPECT_EQ(delta.counters.at("obs_test.determinism.counter"), 0u);
  EXPECT_EQ(delta.histograms.at("obs_test.determinism.hist").count, 0u);
}

TEST(RegistryTest, DeltaSinceSubtractsCountersAndHistograms) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& counter = registry.counter("obs_test.delta.counter");
  Histogram& histogram = registry.histogram("obs_test.delta.hist", {1.0});
  Gauge& gauge = registry.gauge("obs_test.delta.gauge");

  counter.Add(10);
  histogram.Observe(0.5);
  gauge.Set(3);
  const MetricsSnapshot before = registry.Snapshot();

  counter.Add(5);
  histogram.Observe(0.5);
  histogram.Observe(2.0);
  gauge.Set(7);
  const MetricsSnapshot delta = registry.Snapshot().DeltaSince(before);

  EXPECT_EQ(delta.counters.at("obs_test.delta.counter"), 5u);
  const HistogramSnapshot& h = delta.histograms.at("obs_test.delta.hist");
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.counts[0], 1u);
  EXPECT_EQ(h.counts[1], 1u);
  EXPECT_NEAR(h.sum, 2.5, 1e-6);
  // Gauges are point-in-time: the delta keeps the current value.
  EXPECT_EQ(delta.gauges.at("obs_test.delta.gauge"), 7);
}

TEST(ScopedTimerTest, ObservesIntoHistogramAndSink) {
  Histogram histogram({1.0});
  double sink = 0.0;
  { ScopedTimer timer(histogram, &sink); }
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_GE(sink, 0.0);
  EXPECT_NEAR(snap.sum, sink, 1e-9);
}

TEST(RunTelemetryTest, AddPhaseAccumulatesByName) {
  RunTelemetry telemetry;
  telemetry.AddPhase("explore", 1.0);
  telemetry.AddPhase("evaluate", 0.5);
  telemetry.AddPhase("explore", 2.0);
  ASSERT_EQ(telemetry.phases.size(), 2u);
  EXPECT_EQ(telemetry.phases[0].first, "explore");
  EXPECT_DOUBLE_EQ(telemetry.phases[0].second, 3.0);
  EXPECT_DOUBLE_EQ(telemetry.PhaseSecondsTotal(), 3.5);
}

TEST(RunTelemetryTest, JsonAndCsvCarryPhasesAndMetrics) {
  RunTelemetry telemetry;
  telemetry.wall_seconds = 2.25;
  telemetry.AddPhase("build_space", 1.5);
  telemetry.metrics.counters["obs_test.export.counter"] = 12;
  telemetry.metrics.gauges["obs_test.export.gauge"] = -3;
  HistogramSnapshot h;
  h.bounds = {0.5};
  h.counts = {2, 1};
  h.count = 3;
  h.sum = 1.75;
  telemetry.metrics.histograms["obs_test.export.hist"] = h;

  std::ostringstream json;
  telemetry.WriteJson(json);
  const std::string text = json.str();
  EXPECT_NE(text.find("\"wall_seconds\""), std::string::npos);
  EXPECT_NE(text.find("\"build_space\""), std::string::npos);
  EXPECT_NE(text.find("\"obs_test.export.counter\": 12"), std::string::npos);
  EXPECT_NE(text.find("\"obs_test.export.gauge\": -3"), std::string::npos);
  EXPECT_NE(text.find("\"obs_test.export.hist\""), std::string::npos);
  EXPECT_NE(text.find("\"inf\""), std::string::npos);  // +inf bucket.

  std::ostringstream csv;
  telemetry.WriteCsv(csv);
  EXPECT_NE(csv.str().find("counter,obs_test.export.counter,12"),
            std::string::npos);
  EXPECT_NE(csv.str().find("phase,build_space,"), std::string::npos);
}

TEST(RunTelemetryTest, HostileNamesAreEscapedInJson) {
  // Metric and phase names flow into JSON keys verbatim-ish; a name with a
  // quote or newline used to produce unparseable output. Every key now goes
  // through EscapeJson.
  RunTelemetry telemetry;
  telemetry.AddPhase("phase \"zero\"\nline2", 1.0);
  telemetry.metrics.counters["evil\"name\\with\tstuff"] = 7;
  telemetry.metrics.gauges["g\"auge"] = 1;
  telemetry.metrics.gauge_maxes["g\"auge"] = 2;
  HistogramSnapshot h;
  h.counts = {1};
  h.count = 1;
  h.sum = 0.5;
  telemetry.metrics.histograms["h\"ist"] = h;

  std::ostringstream json;
  telemetry.WriteJson(json);
  const std::string text = json.str();
  EXPECT_NE(text.find("\"phase \\\"zero\\\"\\nline2\""), std::string::npos);
  EXPECT_NE(text.find("\"evil\\\"name\\\\with\\tstuff\": 7"),
            std::string::npos);
  EXPECT_NE(text.find("\"g\\\"auge\": 1"), std::string::npos);
  EXPECT_NE(text.find("\"g\\\"auge.max\": 2"), std::string::npos);
  EXPECT_NE(text.find("\"h\\\"ist\""), std::string::npos);
  // No raw control characters survive anywhere in the document.
  for (char c : text) {
    EXPECT_TRUE(static_cast<unsigned char>(c) >= 0x20 || c == '\n')
        << "raw control byte in JSON output";
  }
}

}  // namespace
}  // namespace alex::obs
