#include "obs/metrics.h"

#include <cctype>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "obs/telemetry.h"

namespace alex::obs {
namespace {

// The registry is process-global and shared across every test in this
// binary; each test uses its own metric names so values never interfere.

TEST(CounterTest, SingleThreadedAddAndValue) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(CounterTest, ConcurrentAddsFromThreadPoolAllLand) {
  // Hammer one counter from every pool worker; sharded cells must not lose
  // any increment regardless of how threads map onto shards.
  Counter counter;
  ThreadPool pool(8);
  constexpr int kTasks = 64;
  constexpr int kAddsPerTask = 10000;
  for (int t = 0; t < kTasks; ++t) {
    pool.Submit([&counter] {
      for (int i = 0; i < kAddsPerTask; ++i) counter.Add();
    });
  }
  pool.Wait();
  EXPECT_EQ(counter.Value(),
            static_cast<uint64_t>(kTasks) * kAddsPerTask);
}

TEST(GaugeTest, SetAddAndMaxTracking) {
  Gauge gauge;
  gauge.Set(5);
  gauge.UpdateMax(5);
  gauge.Add(-2);
  EXPECT_EQ(gauge.Value(), 3);
  EXPECT_EQ(gauge.MaxValue(), 5);
  gauge.UpdateMax(2);  // Lower than current max: ignored.
  EXPECT_EQ(gauge.MaxValue(), 5);
  gauge.UpdateMax(9);
  EXPECT_EQ(gauge.MaxValue(), 9);
}

TEST(GaugeTest, ConcurrentUpdateMaxKeepsTrueMax) {
  Gauge gauge;
  ThreadPool pool(8);
  constexpr int kTasks = 32;
  for (int t = 1; t <= kTasks; ++t) {
    pool.Submit([&gauge, t] {
      for (int i = 0; i < 1000; ++i) gauge.UpdateMax(t * 1000 + i);
    });
  }
  pool.Wait();
  EXPECT_EQ(gauge.MaxValue(), kTasks * 1000 + 999);
}

TEST(HistogramTest, BucketsObservationsByUpperBound) {
  Histogram histogram({0.001, 0.01, 0.1});
  histogram.Observe(0.0005);  // bucket 0 (<= 1ms)
  histogram.Observe(0.001);   // bucket 0 (bounds are inclusive upper)
  histogram.Observe(0.005);   // bucket 1
  histogram.Observe(0.05);    // bucket 2
  histogram.Observe(5.0);     // +inf bucket
  histogram.Observe(-1.0);    // clamped to 0 -> bucket 0

  const HistogramSnapshot snap = histogram.Snapshot();
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 3u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 6u);
  EXPECT_NEAR(snap.sum, 0.0005 + 0.001 + 0.005 + 0.05 + 5.0, 1e-6);
  EXPECT_GT(snap.Mean(), 0.0);
}

TEST(HistogramTest, ConcurrentObservationsAllCounted) {
  Histogram histogram({0.5});
  ThreadPool pool(8);
  constexpr int kTasks = 32;
  constexpr int kObsPerTask = 5000;
  for (int t = 0; t < kTasks; ++t) {
    // Half the observations land below the bound, half above; every task
    // uses the same deterministic split, so the merged buckets are exact.
    pool.Submit([&histogram] {
      for (int i = 0; i < kObsPerTask; ++i) {
        histogram.Observe(i % 2 == 0 ? 0.1 : 1.0);
      }
    });
  }
  pool.Wait();
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kTasks) * kObsPerTask);
  EXPECT_EQ(snap.counts[0], static_cast<uint64_t>(kTasks) * kObsPerTask / 2);
  EXPECT_EQ(snap.counts[1], static_cast<uint64_t>(kTasks) * kObsPerTask / 2);
}

TEST(RegistryTest, LookupIsIdempotentAndHandleStable) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& a = registry.counter("obs_test.idempotent");
  Counter& b = registry.counter("obs_test.idempotent");
  EXPECT_EQ(&a, &b);
  a.Add(7);
  EXPECT_EQ(b.Value(), 7u);
  // ResetForTest zeroes values but must not invalidate the reference.
  registry.ResetForTest();
  EXPECT_EQ(a.Value(), 0u);
  a.Add(1);
  EXPECT_EQ(registry.counter("obs_test.idempotent").Value(), 1u);
}

TEST(RegistryTest, HistogramBoundsFixedByFirstRegistration) {
  // A conflicting re-registration logs an error and returns the original
  // histogram — the ladder never changes underneath existing handles.
  MetricsRegistry& registry = MetricsRegistry::Global();
  Histogram& h = registry.histogram("obs_test.fixed_bounds", {1.0, 2.0});
  Histogram& again = registry.histogram("obs_test.fixed_bounds", {9.0});
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.Snapshot().bounds, (std::vector<double>{1.0, 2.0}));
}

TEST(RegistryTest, TryHistogramReportsBoundsConflict) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Result<Histogram*> first =
      registry.TryHistogram("obs_test.try_bounds", {1.0, 2.0});
  ASSERT_TRUE(first.ok());

  // Same bounds (even unsorted / duplicated — they normalize): fine, same
  // handle.
  Result<Histogram*> same =
      registry.TryHistogram("obs_test.try_bounds", {2.0, 1.0, 2.0});
  ASSERT_TRUE(same.ok());
  EXPECT_EQ(*first, *same);

  // Different bounds: loud InvalidArgument naming the metric.
  Result<Histogram*> conflict =
      registry.TryHistogram("obs_test.try_bounds", {5.0});
  ASSERT_FALSE(conflict.ok());
  EXPECT_EQ(conflict.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(conflict.status().message().find("obs_test.try_bounds"),
            std::string::npos);

  // The conflicting call changed nothing.
  EXPECT_EQ((*first)->Snapshot().bounds, (std::vector<double>{1.0, 2.0}));
}

TEST(RegistryTest, BoundsAgnosticLookupNeverConflicts) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Histogram& h = registry.histogram("obs_test.agnostic", {1.0});
  Histogram& again = registry.histogram("obs_test.agnostic");
  EXPECT_EQ(&h, &again);
}

TEST(HistogramQuantileTest, InterpolatesLinearlyWithinBucket) {
  // 10 observations spread evenly through the (1.0, 2.0] bucket. Prometheus
  // semantics: rank q*count falls inside that bucket, position interpolated
  // linearly between its bounds.
  Histogram histogram({1.0, 2.0, 4.0});
  for (int i = 0; i < 10; ++i) histogram.Observe(1.5);
  const HistogramSnapshot snap = histogram.Snapshot();
  // All mass in bucket (1,2]: the median sits halfway through the bucket.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 1.5);
  // q=1.0 -> rank 10 of 10 -> top of the bucket.
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 2.0);
  // q=0.1 -> rank 1 of 10 -> 10% into the bucket.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.1), 1.1);
}

TEST(HistogramQuantileTest, FirstBucketInterpolatesFromZero) {
  Histogram histogram({2.0, 4.0});
  histogram.Observe(1.0);
  histogram.Observe(1.0);
  const HistogramSnapshot snap = histogram.Snapshot();
  // Both observations land in bucket [0, 2]; the lower edge of the first
  // bucket is 0 by convention. Median: rank = 0.5 * 2 = 1, position 1/2 in
  // the bucket -> 0 + 2 * 0.5 = 1.0.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 2.0);
}

TEST(HistogramQuantileTest, OverflowBucketReturnsHighestFiniteBound) {
  // Observations beyond the last finite bound land in the +Inf bucket; the
  // quantile cannot interpolate there and returns the highest finite bound
  // (Prometheus histogram_quantile behavior).
  Histogram histogram({0.1, 1.0});
  histogram.Observe(50.0);
  histogram.Observe(60.0);
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_DOUBLE_EQ(snap.Quantile(0.99), 1.0);
}

TEST(HistogramQuantileTest, EmptyAndClampedInputs) {
  Histogram histogram({1.0});
  EXPECT_DOUBLE_EQ(histogram.Snapshot().Quantile(0.99), 0.0);

  histogram.Observe(0.5);
  const HistogramSnapshot snap = histogram.Snapshot();
  // q outside [0,1] clamps instead of reading out of range.
  EXPECT_DOUBLE_EQ(snap.Quantile(-3.0), snap.Quantile(0.0));
  EXPECT_DOUBLE_EQ(snap.Quantile(7.0), snap.Quantile(1.0));
  // With one observation every quantile resolves to the same rank-1 point.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.01), snap.Quantile(0.99));
}

TEST(HistogramQuantileTest, SkipsEmptyLeadingBuckets) {
  Histogram histogram({0.001, 0.01, 0.1, 1.0});
  for (int i = 0; i < 4; ++i) histogram.Observe(0.05);  // bucket (0.01, 0.1]
  const HistogramSnapshot snap = histogram.Snapshot();
  const double p50 = snap.Quantile(0.5);
  EXPECT_GT(p50, 0.01);
  EXPECT_LE(p50, 0.1);
}

TEST(RegistryTest, SnapshotMergeIsDeterministic) {
  // Two snapshots taken after identical activity compare equal, and the
  // delta between them is empty activity — regardless of which threads did
  // the work (shards merge on snapshot).
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& counter = registry.counter("obs_test.determinism.counter");
  Histogram& histogram =
      registry.histogram("obs_test.determinism.hist", {0.5});

  ThreadPool pool(4);
  for (int t = 0; t < 16; ++t) {
    pool.Submit([&counter, &histogram] {
      for (int i = 0; i < 1000; ++i) {
        counter.Add();
        histogram.Observe(0.1);
      }
    });
  }
  pool.Wait();

  const MetricsSnapshot first = registry.Snapshot();
  const MetricsSnapshot second = registry.Snapshot();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.counters.at("obs_test.determinism.counter") % 16000, 0u);

  const MetricsSnapshot delta = second.DeltaSince(first);
  EXPECT_EQ(delta.counters.at("obs_test.determinism.counter"), 0u);
  EXPECT_EQ(delta.histograms.at("obs_test.determinism.hist").count, 0u);
}

TEST(RegistryTest, DeltaSinceSubtractsCountersAndHistograms) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& counter = registry.counter("obs_test.delta.counter");
  Histogram& histogram = registry.histogram("obs_test.delta.hist", {1.0});
  Gauge& gauge = registry.gauge("obs_test.delta.gauge");

  counter.Add(10);
  histogram.Observe(0.5);
  gauge.Set(3);
  const MetricsSnapshot before = registry.Snapshot();

  counter.Add(5);
  histogram.Observe(0.5);
  histogram.Observe(2.0);
  gauge.Set(7);
  const MetricsSnapshot delta = registry.Snapshot().DeltaSince(before);

  EXPECT_EQ(delta.counters.at("obs_test.delta.counter"), 5u);
  const HistogramSnapshot& h = delta.histograms.at("obs_test.delta.hist");
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.counts[0], 1u);
  EXPECT_EQ(h.counts[1], 1u);
  EXPECT_NEAR(h.sum, 2.5, 1e-6);
  // Gauges are point-in-time: the delta keeps the current value.
  EXPECT_EQ(delta.gauges.at("obs_test.delta.gauge"), 7);
}

TEST(RegistryTest, DeltaSinceSaturatesOnCounterReset) {
  // A counter reset between snapshots (restart, ResetForTest) used to make
  // the unsigned subtraction wrap to ~2^64; the delta must saturate at 0.
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& counter = registry.counter("obs_test.reset.counter");
  Histogram& histogram = registry.histogram("obs_test.reset.hist", {1.0});

  counter.Add(100);
  histogram.Observe(0.5);
  histogram.Observe(0.5);
  const MetricsSnapshot before = registry.Snapshot();

  counter.Reset();
  histogram.Reset();
  counter.Add(3);  // Post-reset activity smaller than the old value.
  histogram.Observe(0.5);
  const MetricsSnapshot delta = registry.Snapshot().DeltaSince(before);

  EXPECT_EQ(delta.counters.at("obs_test.reset.counter"), 0u);
  const HistogramSnapshot& h = delta.histograms.at("obs_test.reset.hist");
  EXPECT_EQ(h.count, 0u);
  EXPECT_EQ(h.counts[0], 0u);
  EXPECT_GE(h.sum, 0.0);
}

TEST(ScopedTimerTest, ObservesIntoHistogramAndSink) {
  Histogram histogram({1.0});
  double sink = 0.0;
  { ScopedTimer timer(histogram, &sink); }
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_GE(sink, 0.0);
  EXPECT_NEAR(snap.sum, sink, 1e-9);
}

TEST(RunTelemetryTest, AddPhaseAccumulatesByName) {
  RunTelemetry telemetry;
  telemetry.AddPhase("explore", 1.0);
  telemetry.AddPhase("evaluate", 0.5);
  telemetry.AddPhase("explore", 2.0);
  ASSERT_EQ(telemetry.phases.size(), 2u);
  EXPECT_EQ(telemetry.phases[0].first, "explore");
  EXPECT_DOUBLE_EQ(telemetry.phases[0].second, 3.0);
  EXPECT_DOUBLE_EQ(telemetry.PhaseSecondsTotal(), 3.5);
}

TEST(RunTelemetryTest, JsonAndCsvCarryPhasesAndMetrics) {
  RunTelemetry telemetry;
  telemetry.wall_seconds = 2.25;
  telemetry.AddPhase("build_space", 1.5);
  telemetry.metrics.counters["obs_test.export.counter"] = 12;
  telemetry.metrics.gauges["obs_test.export.gauge"] = -3;
  HistogramSnapshot h;
  h.bounds = {0.5};
  h.counts = {2, 1};
  h.count = 3;
  h.sum = 1.75;
  telemetry.metrics.histograms["obs_test.export.hist"] = h;

  std::ostringstream json;
  telemetry.WriteJson(json);
  const std::string text = json.str();
  EXPECT_NE(text.find("\"wall_seconds\""), std::string::npos);
  EXPECT_NE(text.find("\"build_space\""), std::string::npos);
  EXPECT_NE(text.find("\"obs_test.export.counter\": 12"), std::string::npos);
  EXPECT_NE(text.find("\"obs_test.export.gauge\": -3"), std::string::npos);
  EXPECT_NE(text.find("\"obs_test.export.hist\""), std::string::npos);
  EXPECT_NE(text.find("\"inf\""), std::string::npos);  // +inf bucket.

  std::ostringstream csv;
  telemetry.WriteCsv(csv);
  EXPECT_NE(csv.str().find("counter,obs_test.export.counter,12"),
            std::string::npos);
  EXPECT_NE(csv.str().find("phase,build_space,"), std::string::npos);
}

TEST(RunTelemetryTest, HostileNamesAreEscapedInJson) {
  // Metric and phase names flow into JSON keys verbatim-ish; a name with a
  // quote or newline used to produce unparseable output. Every key now goes
  // through EscapeJson.
  RunTelemetry telemetry;
  telemetry.AddPhase("phase \"zero\"\nline2", 1.0);
  telemetry.metrics.counters["evil\"name\\with\tstuff"] = 7;
  telemetry.metrics.gauges["g\"auge"] = 1;
  telemetry.metrics.gauge_maxes["g\"auge"] = 2;
  HistogramSnapshot h;
  h.counts = {1};
  h.count = 1;
  h.sum = 0.5;
  telemetry.metrics.histograms["h\"ist"] = h;

  std::ostringstream json;
  telemetry.WriteJson(json);
  const std::string text = json.str();
  EXPECT_NE(text.find("\"phase \\\"zero\\\"\\nline2\""), std::string::npos);
  EXPECT_NE(text.find("\"evil\\\"name\\\\with\\tstuff\": 7"),
            std::string::npos);
  EXPECT_NE(text.find("\"g\\\"auge\": 1"), std::string::npos);
  EXPECT_NE(text.find("\"g\\\"auge.max\": 2"), std::string::npos);
  EXPECT_NE(text.find("\"h\\\"ist\""), std::string::npos);
  // No raw control characters survive anywhere in the document.
  for (char c : text) {
    EXPECT_TRUE(static_cast<unsigned char>(c) >= 0x20 || c == '\n')
        << "raw control byte in JSON output";
  }
}

TEST(PrometheusTest, SanitizeMetricNameMapsToLegalCharset) {
  EXPECT_EQ(SanitizeMetricName("fed.probe_cache_hits"),
            "fed_probe_cache_hits");
  EXPECT_EQ(SanitizeMetricName("rdf.block_cache.hits"),
            "rdf_block_cache_hits");
  EXPECT_EQ(SanitizeMetricName("already_legal:name"), "already_legal:name");
  EXPECT_EQ(SanitizeMetricName("9starts_with_digit"), "_9starts_with_digit");
  EXPECT_EQ(SanitizeMetricName("spaces and-dashes"), "spaces_and_dashes");
  EXPECT_EQ(SanitizeMetricName(""), "_");
  // Every output conforms to [a-zA-Z_:][a-zA-Z0-9_:]*.
  for (const char* hostile :
       {"a.b", "1", "-", "\"quote\"", "üñïçödé", "x{label=\"v\"}"}) {
    const std::string out = SanitizeMetricName(hostile);
    ASSERT_FALSE(out.empty());
    EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(out[0])) ||
                out[0] == '_' || out[0] == ':')
        << out;
    for (char c : out) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                  c == ':')
          << "illegal char in '" << out << "'";
    }
  }
}

TEST(PrometheusTest, TextExpositionIsWellFormed) {
  MetricsSnapshot snapshot;
  snapshot.counters["fed.probe_cache_hits"] = 42;
  snapshot.gauges["sim.active_episodes"] = 3;
  snapshot.gauge_maxes["sim.active_episodes"] = 9;
  HistogramSnapshot h;
  h.bounds = {0.001, 0.01, 0.1};
  h.counts = {5, 3, 1, 2};  // Last slot is the +Inf bucket.
  h.count = 11;
  h.sum = 0.75;
  snapshot.histograms["fed.query_seconds"] = h;

  std::ostringstream os;
  WritePrometheusText(snapshot, os);
  const std::string text = os.str();

  // Counters: sanitized name + _total suffix with a TYPE line.
  EXPECT_NE(text.find("# TYPE fed_probe_cache_hits_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("fed_probe_cache_hits_total 42"), std::string::npos);

  // Gauges carry their value and a _max companion.
  EXPECT_NE(text.find("sim_active_episodes 3"), std::string::npos);
  EXPECT_NE(text.find("sim_active_episodes_max 9"), std::string::npos);

  // Histogram buckets are cumulative and end with le="+Inf" == _count.
  EXPECT_NE(text.find("# TYPE fed_query_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("fed_query_seconds_bucket{le=\"0.001\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("fed_query_seconds_bucket{le=\"0.01\"} 8"),
            std::string::npos);
  EXPECT_NE(text.find("fed_query_seconds_bucket{le=\"0.1\"} 9"),
            std::string::npos);
  EXPECT_NE(text.find("fed_query_seconds_bucket{le=\"+Inf\"} 11"),
            std::string::npos);
  EXPECT_NE(text.find("fed_query_seconds_count 11"), std::string::npos);
  EXPECT_NE(text.find("fed_query_seconds_sum 0.75"), std::string::npos);

  // Self-lint: every non-comment line is `name{labels} value` or
  // `name value`, with a legal metric name.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const size_t name_end = line.find_first_of(" {");
    ASSERT_NE(name_end, std::string::npos) << line;
    const std::string name = line.substr(0, name_end);
    ASSERT_FALSE(name.empty()) << line;
    EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(name[0])) ||
                name[0] == '_' || name[0] == ':')
        << line;
    for (char c : name) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                  c == ':')
          << line;
    }
    // The line ends in a parseable number.
    const size_t value_start = line.find_last_of(' ');
    ASSERT_NE(value_start, std::string::npos) << line;
    size_t parsed = 0;
    EXPECT_NO_THROW({ (void)std::stod(line.substr(value_start + 1), &parsed); })
        << line;
  }
}

}  // namespace
}  // namespace alex::obs
