#include "similarity/string_metrics.h"

#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace alex::sim {
namespace {

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("", ""), 0u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0u);
  EXPECT_EQ(LevenshteinDistance("abc", "abd"), 1u);
  EXPECT_EQ(LevenshteinDistance("ab", "ba"), 2u);
}

TEST(LevenshteinTest, SimilarityNormalization) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", ""), 0.0);
  EXPECT_NEAR(LevenshteinSimilarity("kitten", "sitting"), 1.0 - 3.0 / 7, 1e-9);
}

TEST(JaroTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("a", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
  EXPECT_NEAR(JaroSimilarity("martha", "marhta"), 0.944444, 1e-5);
  EXPECT_NEAR(JaroSimilarity("dixon", "dicksonx"), 0.766667, 1e-5);
}

TEST(JaroWinklerTest, PrefixBoost) {
  EXPECT_NEAR(JaroWinklerSimilarity("martha", "marhta"), 0.961111, 1e-5);
  EXPECT_NEAR(JaroWinklerSimilarity("dixon", "dicksonx"), 0.813333, 1e-5);
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("same", "same"), 1.0);
  // No common prefix: equals plain Jaro.
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("abcd", "xbcd"),
                   JaroSimilarity("abcd", "xbcd"));
}

TEST(TokenJaccardTest, Values) {
  EXPECT_DOUBLE_EQ(TokenJaccardSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(TokenJaccardSimilarity("a b", ""), 0.0);
  EXPECT_DOUBLE_EQ(TokenJaccardSimilarity("lebron james", "James, LeBron"),
                   1.0);
  EXPECT_DOUBLE_EQ(TokenJaccardSimilarity("a b", "b c"), 1.0 / 3);
  EXPECT_DOUBLE_EQ(TokenJaccardSimilarity("a b", "c d"), 0.0);
  // Duplicate tokens collapse into a set.
  EXPECT_DOUBLE_EQ(TokenJaccardSimilarity("a a b", "a b"), 1.0);
}

TEST(TrigramDiceTest, Values) {
  EXPECT_DOUBLE_EQ(TrigramDiceSimilarity("abcdef", "abcdef"), 1.0);
  EXPECT_DOUBLE_EQ(TrigramDiceSimilarity("abcdef", "uvwxyz"), 0.0);
  // Short strings fall back to exact equality.
  EXPECT_DOUBLE_EQ(TrigramDiceSimilarity("ab", "ab"), 1.0);
  EXPECT_DOUBLE_EQ(TrigramDiceSimilarity("ab", "ba"), 0.0);
  // "night" vs "nacht": grams {nig, igh, ght} vs {nac, ach, cht}: 0 shared.
  EXPECT_DOUBLE_EQ(TrigramDiceSimilarity("night", "nacht"), 0.0);
  // One deletion in a longer string keeps most grams.
  double sim = TrigramDiceSimilarity("abcdefghij", "abcdefghi");
  EXPECT_GT(sim, 0.8);
  EXPECT_LT(sim, 1.0);
}

TEST(TrigramDiceTest, MultisetSemantics) {
  // "aaaa" has grams {aaa, aaa}; "aaa" has {aaa}: intersection 1 of 3 total.
  EXPECT_NEAR(TrigramDiceSimilarity("aaaa", "aaa"), 2.0 / 3, 1e-9);
}

/// Property sweep: all metrics are symmetric, bounded to [0,1], and reflexive.
class MetricPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricPropertyTest, SymmetricBoundedReflexive) {
  alex::Rng rng(GetParam());
  auto random_string = [&rng]() {
    std::string s;
    const size_t len = rng.UniformInt(12);
    for (size_t i = 0; i < len; ++i) {
      s += static_cast<char>('a' + rng.UniformInt(6));
    }
    return s;
  };
  for (int i = 0; i < 200; ++i) {
    const std::string a = random_string();
    const std::string b = random_string();
    for (auto metric : {LevenshteinSimilarity, JaroSimilarity,
                        JaroWinklerSimilarity, TokenJaccardSimilarity,
                        TrigramDiceSimilarity}) {
      const double ab = metric(a, b);
      const double ba = metric(b, a);
      EXPECT_DOUBLE_EQ(ab, ba) << "a=" << a << " b=" << b;
      EXPECT_GE(ab, 0.0);
      EXPECT_LE(ab, 1.0);
      EXPECT_DOUBLE_EQ(metric(a, a), 1.0) << "a=" << a;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricPropertyTest,
                         ::testing::Values(1, 7, 42, 1001));

}  // namespace
}  // namespace alex::sim
