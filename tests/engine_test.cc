#include "core/engine.h"

#include <gtest/gtest.h>

namespace alex::core {
namespace {

using feedback::FeedbackItem;
using feedback::PackPair;
using rdf::Term;

FeedbackItem Positive(rdf::EntityId l, rdf::EntityId r) {
  return FeedbackItem{l, r, true};
}
FeedbackItem Negative(rdf::EntityId l, rdf::EntityId r) {
  return FeedbackItem{l, r, false};
}

/// Fixture with a controlled link space: 6 left/right pairs with exact
/// names (score 1.0 on the name feature) plus one decoy cluster.
class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* names[] = {"Alpha Arden",  "Beta Belcar", "Gamma Gild",
                           "Delta Dreston", "Epsil Elmor", "Zeta Zorva"};
    for (int i = 0; i < 6; ++i) {
      left_.AddLiteralTriple("http://l/e" + std::to_string(i),
                             "http://l/name", Term::Literal(names[i]));
      right_.AddLiteralTriple("http://r/e" + std::to_string(i),
                              "http://r/label", Term::Literal(names[i]));
    }
    left_.BuildEntityIndex();
    right_.BuildEntityIndex();
    std::vector<rdf::EntityId> lefts;
    for (rdf::EntityId e = 0; e < left_.num_entities(); ++e) {
      lefts.push_back(e);
    }
    space_.Build(left_, right_, lefts, 0.3, 20000);

    config_.episode_size = 10;
    config_.epsilon = 0.0;  // Deterministic greedy for tests.
    config_.step_size = 0.05;
    config_.max_links_per_action = 100;
    config_.rollback_threshold = 2;
  }

  rdf::EntityId L(int i) {
    return *left_.FindEntityByIri("http://l/e" + std::to_string(i));
  }
  rdf::EntityId R(int i) {
    return *right_.FindEntityByIri("http://r/e" + std::to_string(i));
  }

  rdf::Dataset left_{"l"};
  rdf::Dataset right_{"r"};
  LinkSpace space_;
  AlexConfig config_;
};

TEST_F(EngineTest, InitializeSeedsCandidates) {
  AlexEngine engine(&space_, config_, 1);
  engine.InitializeCandidates({PackPair(L(0), R(0)), PackPair(L(1), R(1))});
  EXPECT_EQ(engine.candidates().size(), 2u);
}

TEST_F(EngineTest, PositiveFeedbackExploresBand) {
  AlexEngine engine(&space_, config_, 1);
  engine.InitializeCandidates({PackPair(L(0), R(0))});
  engine.ProcessFeedback(Positive(L(0), R(0)));
  // The only feature is (name, label) at score 1.0; the band [0.95, 1.05]
  // contains every exact-name pair, so all 6 become candidates.
  EXPECT_EQ(engine.candidates().size(), 6u);
  EXPECT_TRUE(engine.candidates().count(PackPair(L(3), R(3))));
  EXPECT_EQ(engine.total_explored_links(), 5u);
}

TEST_F(EngineTest, NegativeFeedbackRemovesAndBlacklists) {
  AlexEngine engine(&space_, config_, 1);
  engine.InitializeCandidates({PackPair(L(0), R(0)), PackPair(L(0), R(1))});
  engine.ProcessFeedback(Negative(L(0), R(1)));
  EXPECT_EQ(engine.candidates().size(), 1u);
  EXPECT_FALSE(engine.candidates().count(PackPair(L(0), R(1))));
  EXPECT_TRUE(engine.IsBlacklisted(PackPair(L(0), R(1))));
  EXPECT_EQ(engine.blacklist_size(), 1u);
}

TEST_F(EngineTest, BlacklistedLinksAreNotReExplored) {
  AlexEngine engine(&space_, config_, 1);
  engine.InitializeCandidates({PackPair(L(0), R(0)), PackPair(L(3), R(3))});
  // Blacklist pair 3 first, then explore from pair 0.
  engine.ProcessFeedback(Negative(L(3), R(3)));
  engine.ProcessFeedback(Positive(L(0), R(0)));
  EXPECT_FALSE(engine.candidates().count(PackPair(L(3), R(3))));
  EXPECT_EQ(engine.candidates().size(), 5u);  // 6 exact pairs minus pair 3.
}

TEST_F(EngineTest, BlacklistDisabledAllowsReExploration) {
  config_.use_blacklist = false;
  AlexEngine engine(&space_, config_, 1);
  engine.InitializeCandidates({PackPair(L(0), R(0)), PackPair(L(3), R(3))});
  engine.ProcessFeedback(Negative(L(3), R(3)));
  engine.ProcessFeedback(Positive(L(0), R(0)));
  // Without the blacklist the wrong link is re-added by exploration.
  EXPECT_TRUE(engine.candidates().count(PackPair(L(3), R(3))));
}

TEST_F(EngineTest, RollbackRemovesGeneratedLinks) {
  AlexEngine engine(&space_, config_, 1);
  engine.InitializeCandidates({PackPair(L(0), R(0))});
  engine.ProcessFeedback(Positive(L(0), R(0)));  // Explores all 6 pairs.
  ASSERT_EQ(engine.candidates().size(), 6u);
  // Two negatives on explored links hit rollback_threshold=2: everything
  // that action generated and was not positively marked is removed.
  engine.ProcessFeedback(Negative(L(1), R(1)));
  engine.ProcessFeedback(Negative(L(2), R(2)));
  // Pairs 1,2 removed by explicit negatives; 3,4,5 removed by rollback;
  // pair 0 (positively marked) survives.
  EXPECT_EQ(engine.candidates().size(), 1u);
  EXPECT_TRUE(engine.candidates().count(PackPair(L(0), R(0))));
}

TEST_F(EngineTest, RolledBackLinksAreNotBlacklisted) {
  AlexEngine engine(&space_, config_, 1);
  engine.InitializeCandidates({PackPair(L(0), R(0))});
  engine.ProcessFeedback(Positive(L(0), R(0)));
  engine.ProcessFeedback(Negative(L(1), R(1)));
  engine.ProcessFeedback(Negative(L(2), R(2)));
  // 1 and 2 got explicit negatives -> blacklisted. 3,4,5 rolled back only.
  EXPECT_TRUE(engine.IsBlacklisted(PackPair(L(1), R(1))));
  EXPECT_FALSE(engine.IsBlacklisted(PackPair(L(3), R(3))));
  // A later action may rediscover 3,4,5.
  engine.ProcessFeedback(Positive(L(0), R(0)));
  EXPECT_TRUE(engine.candidates().count(PackPair(L(3), R(3))));
}

TEST_F(EngineTest, RollbackDisabledKeepsGeneratedLinks) {
  config_.use_rollback = false;
  AlexEngine engine(&space_, config_, 1);
  engine.InitializeCandidates({PackPair(L(0), R(0))});
  engine.ProcessFeedback(Positive(L(0), R(0)));
  engine.ProcessFeedback(Negative(L(1), R(1)));
  engine.ProcessFeedback(Negative(L(2), R(2)));
  // Only the explicitly rejected links are gone.
  EXPECT_EQ(engine.candidates().size(), 4u);
}

TEST_F(EngineTest, PositivelyMarkedLinksSurviveRollback) {
  AlexEngine engine(&space_, config_, 1);
  engine.InitializeCandidates({PackPair(L(0), R(0))});
  engine.ProcessFeedback(Positive(L(0), R(0)));
  engine.ProcessFeedback(Positive(L(5), R(5)));  // Approve an explored link.
  engine.ProcessFeedback(Negative(L(1), R(1)));
  engine.ProcessFeedback(Negative(L(2), R(2)));  // Triggers rollback.
  EXPECT_TRUE(engine.candidates().count(PackPair(L(5), R(5))));
  EXPECT_FALSE(engine.candidates().count(PackPair(L(3), R(3))));
}

TEST_F(EngineTest, EpisodeStatsAreAccurate) {
  AlexEngine engine(&space_, config_, 1);
  engine.InitializeCandidates({PackPair(L(0), R(0)), PackPair(L(0), R(1))});
  engine.ProcessFeedback(Positive(L(0), R(0)));
  engine.ProcessFeedback(Negative(L(0), R(1)));
  EngineEpisodeStats stats = engine.EndEpisode();
  EXPECT_EQ(stats.feedback_items, 2u);
  EXPECT_EQ(stats.positive_items, 1u);
  EXPECT_EQ(stats.negative_items, 1u);
  EXPECT_EQ(stats.links_added, 5u);
  EXPECT_EQ(stats.links_removed, 1u);
  // Stats reset after EndEpisode.
  EngineEpisodeStats empty = engine.EndEpisode();
  EXPECT_EQ(empty.feedback_items, 0u);
}

TEST_F(EngineTest, FirstVisitMonteCarloCreditsGenerators) {
  AlexEngine engine(&space_, config_, 1);
  engine.InitializeCandidates({PackPair(L(0), R(0))});
  engine.ProcessFeedback(Positive(L(0), R(0)));
  // Feedback on an explored link credits the generating state-action pair.
  engine.ProcessFeedback(Positive(L(1), R(1)));
  const FeatureSet* fs = space_.FeaturesOf(PackPair(L(0), R(0)));
  ASSERT_NE(fs, nullptr);
  const StateAction generator{PackPair(L(0), R(0)), (*fs)[0].key};
  auto q = engine.policy().Q(generator);
  ASSERT_TRUE(q.has_value());
  EXPECT_DOUBLE_EQ(*q, 1.0);

  // Second visit of the same state within the episode adds no new return.
  engine.ProcessFeedback(Positive(L(1), R(1)));
  EXPECT_DOUBLE_EQ(*engine.policy().Q(generator), 1.0);
  // But a different explored state's feedback appends a second return.
  engine.ProcessFeedback(Negative(L(2), R(2)));
  EXPECT_DOUBLE_EQ(*engine.policy().Q(generator), 0.0);  // Avg of {1, -1}.
}

TEST_F(EngineTest, NewEpisodeResetsFirstVisit) {
  AlexEngine engine(&space_, config_, 1);
  engine.InitializeCandidates({PackPair(L(0), R(0))});
  engine.ProcessFeedback(Positive(L(0), R(0)));
  engine.ProcessFeedback(Positive(L(1), R(1)));
  engine.EndEpisode();
  // In a fresh episode the same state counts as a new first visit.
  engine.ProcessFeedback(Positive(L(1), R(1)));
  const FeatureSet* fs = space_.FeaturesOf(PackPair(L(0), R(0)));
  const StateAction generator{PackPair(L(0), R(0)), (*fs)[0].key};
  EXPECT_DOUBLE_EQ(*engine.policy().Q(generator), 1.0);  // Two +1 returns.
}

TEST_F(EngineTest, FeedbackOnLinkOutsideSpaceIsHandled) {
  AlexEngine engine(&space_, config_, 1);
  engine.InitializeCandidates({PackPair(77, 88)});  // Not in the space.
  engine.ProcessFeedback(Positive(77, 88));  // No action possible; no crash.
  EXPECT_EQ(engine.candidates().size(), 1u);
  engine.ProcessFeedback(Negative(77, 88));
  EXPECT_TRUE(engine.candidates().empty());
}

TEST_F(EngineTest, PositiveFeedbackReadmitsRejectedLink) {
  AlexEngine engine(&space_, config_, 1);
  engine.InitializeCandidates({PackPair(L(0), R(0))});
  engine.ProcessFeedback(Negative(L(0), R(0)));  // Erroneous rejection.
  EXPECT_TRUE(engine.candidates().empty());
  EXPECT_TRUE(engine.IsBlacklisted(PackPair(L(0), R(0))));
  engine.ProcessFeedback(Positive(L(0), R(0)));  // User corrects themselves.
  EXPECT_TRUE(engine.candidates().count(PackPair(L(0), R(0))));
  EXPECT_FALSE(engine.IsBlacklisted(PackPair(L(0), R(0))));
}

TEST_F(EngineTest, EpsilonDecayFollowsGlieSchedule) {
  // Pins the corrected GLIE schedule over the first five episodes: after k
  // completed episodes the policy runs with ε0 / k, so episode 1 explores
  // with the full ε0 and episode k+1 with ε0 / k. The previous divisor
  // (episodes + 1) skipped the full-ε0 phase entirely — see
  // AlexConfig::epsilon_decay.
  AlexConfig config = config_;
  config.epsilon = 0.4;
  config.epsilon_decay = true;
  AlexEngine engine(&space_, config, 7);
  EXPECT_DOUBLE_EQ(engine.policy().epsilon(), 0.4);  // Episode 1: full ε0.
  const double expected[] = {0.4 / 1, 0.4 / 2, 0.4 / 3, 0.4 / 4, 0.4 / 5};
  for (int k = 1; k <= 5; ++k) {
    engine.EndEpisode();
    EXPECT_DOUBLE_EQ(engine.policy().epsilon(), expected[k - 1])
        << "after EndEpisode #" << k;
    EXPECT_EQ(engine.episodes_completed(), static_cast<size_t>(k));
  }
}

TEST_F(EngineTest, MaxLinksPerActionCapsYield) {
  config_.max_links_per_action = 2;
  AlexEngine engine(&space_, config_, 1);
  engine.InitializeCandidates({PackPair(L(0), R(0))});
  engine.ProcessFeedback(Positive(L(0), R(0)));
  // 5 pairs are in the band but only 2 may be added.
  EXPECT_EQ(engine.candidates().size(), 3u);
}

}  // namespace
}  // namespace alex::core
