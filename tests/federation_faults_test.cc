// Fault-tolerance tests for the federation stack: deterministic fault
// injection (seeded Rng + SimClock — no wall sleeps anywhere), retry with
// backoff and deadlines, circuit breaking, and graceful degradation of
// federated answers. The invariants under test:
//
//   - with faults off, the decorated stack is bit-identical to the plain one;
//   - a degraded result is a subset of the fault-free result, never
//     fabricated, and carries per-endpoint error detail;
//   - provenance on surviving rows still refers only to real links;
//   - the breaker opens under sustained failure and re-closes after the
//     endpoint recovers and the cooldown elapses.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/retry.h"
#include "federation/endpoint.h"
#include "federation/fault_injection.h"
#include "federation/federated_engine.h"
#include "federation/probe_cache.h"
#include "federation/resilient_endpoint.h"
#include "obs/metrics.h"

namespace alex::fed {
namespace {

using rdf::Term;

// A query whose healthy answer spans both endpoints: one left fact plus two
// right facts reachable only through the sameAs link.
constexpr char kSpanningQuery[] =
    "SELECT ?p ?o WHERE { <http://l/acme> ?p ?o . }";

class FederationFaultsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    left_.AddIriTriple("http://l/alice", "http://l/worksFor", "http://l/acme");
    left_.AddLiteralTriple("http://l/acme", "http://l/name",
                           Term::Literal("Acme"));
    right_.AddLiteralTriple("http://r/acme-corp", "http://r/hq",
                            Term::Literal("Belcaster"));
    right_.AddLiteralTriple("http://r/acme-corp", "http://r/label",
                            Term::Literal("Acme Corporation"));
    links_.Add("http://l/acme", "http://r/acme-corp");
    left_ep_ = std::make_unique<Endpoint>(&left_);
    right_ep_ = std::make_unique<Endpoint>(&right_);
  }

  /// Builds the full decorated stack with the given right-side profile and
  /// returns an engine over it. The left side stays healthy.
  void BuildStack(const FaultProfile& right_profile,
                  RetryPolicy retry = RetryPolicy(),
                  CircuitBreakerConfig breaker = CircuitBreakerConfig()) {
    faulty_left_ = std::make_unique<FaultInjectedEndpoint>(
        left_ep_.get(), FaultProfile::Healthy(), /*seed=*/11, &clock_);
    faulty_right_ = std::make_unique<FaultInjectedEndpoint>(
        right_ep_.get(), right_profile, /*seed=*/12, &clock_);
    resilient_left_ = std::make_unique<ResilientEndpoint>(
        faulty_left_.get(), retry, breaker, /*seed=*/13, &clock_);
    resilient_right_ = std::make_unique<ResilientEndpoint>(
        faulty_right_.get(), retry, breaker, /*seed=*/14, &clock_);
    engine_ = std::make_unique<FederatedEngine>(
        resilient_left_.get(), resilient_right_.get(), &links_);
  }

  /// Fault-free reference result from undecorated endpoints.
  FederatedResult HealthyResult(const std::string& query) {
    FederatedEngine plain(left_ep_.get(), right_ep_.get(), &links_);
    auto r = plain.ExecuteText(query);
    EXPECT_TRUE(r.ok()) << r.status();
    return *r;
  }

  static bool SameRow(const ProvenancedRow& a, const ProvenancedRow& b) {
    return a.values == b.values;
  }

  static bool IsSubset(const std::vector<ProvenancedRow>& small,
                       const std::vector<ProvenancedRow>& big) {
    return std::all_of(small.begin(), small.end(), [&](const auto& row) {
      return std::any_of(big.begin(), big.end(), [&](const auto& candidate) {
        return SameRow(row, candidate);
      });
    });
  }

  rdf::Dataset left_{"hr"};
  rdf::Dataset right_{"companies"};
  LinkIndex links_;
  SimClock clock_;
  std::unique_ptr<Endpoint> left_ep_;
  std::unique_ptr<Endpoint> right_ep_;
  std::unique_ptr<FaultInjectedEndpoint> faulty_left_;
  std::unique_ptr<FaultInjectedEndpoint> faulty_right_;
  std::unique_ptr<ResilientEndpoint> resilient_left_;
  std::unique_ptr<ResilientEndpoint> resilient_right_;
  std::unique_ptr<FederatedEngine> engine_;
};

TEST_F(FederationFaultsTest, HealthyStackBitIdenticalToPlainEngine) {
  BuildStack(FaultProfile::Healthy());
  const FederatedResult healthy = HealthyResult(kSpanningQuery);
  auto r = engine_->ExecuteText(kSpanningQuery);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->degraded);
  EXPECT_TRUE(r->errors.empty());
  ASSERT_EQ(r->NumRows(), healthy.NumRows());
  for (size_t i = 0; i < r->rows.size(); ++i) {
    EXPECT_EQ(r->rows[i].values, healthy.rows[i].values) << "row " << i;
    ASSERT_EQ(r->rows[i].links_used.size(),
              healthy.rows[i].links_used.size());
    for (size_t j = 0; j < r->rows[i].links_used.size(); ++j) {
      EXPECT_EQ(r->rows[i].links_used[j].left_iri,
                healthy.rows[i].links_used[j].left_iri);
      EXPECT_EQ(r->rows[i].links_used[j].right_iri,
                healthy.rows[i].links_used[j].right_iri);
    }
  }
  EXPECT_DOUBLE_EQ(clock_.NowSeconds(), 0.0);  // Healthy adds no latency.
}

TEST_F(FederationFaultsTest, FailedProbeLeaksNoRows) {
  // Failures are drawn before the inner endpoint is consulted, so a failed
  // probe streams nothing — the guarantee that makes retries idempotent.
  FaultProfile always_fail;
  always_fail.error_rate = 1.0;
  FaultInjectedEndpoint faulty(right_ep_.get(), always_fail, 5, &clock_);
  PatternProbe probe;  // All wildcards: would match every right triple.
  size_t rows = 0;
  const Status st = faulty.Probe(probe, CallOptions(),
                                 [&](const Term*, const Term*, const Term*) {
                                   ++rows;
                                   return true;
                                 });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_EQ(rows, 0u);
}

TEST_F(FederationFaultsTest, RetryRecoversFromTransientOutage) {
  // First injector call fails, the retry succeeds: the query must come back
  // complete and NOT degraded, with fed.retries ticking up.
  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.jitter_fraction = 0.0;
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  BuildStack(FaultProfile::DownFor(1), retry);
  const FederatedResult healthy = HealthyResult(kSpanningQuery);
  auto r = engine_->ExecuteText(kSpanningQuery);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->degraded);
  EXPECT_EQ(r->NumRows(), healthy.NumRows());
  const obs::MetricsSnapshot delta =
      obs::MetricsRegistry::Global().Snapshot().DeltaSince(before);
  EXPECT_GE(delta.counters.at("fed.retries"), 1u);
  // Backoff between the attempts advanced the virtual clock.
  EXPECT_GT(clock_.NowSeconds(), 0.0);
}

TEST_F(FederationFaultsTest, OneEndpointDownYieldsDegradedPartialResult) {
  RetryPolicy retry;
  retry.max_attempts = 2;
  retry.jitter_fraction = 0.0;
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  BuildStack(FaultProfile::Down(), retry);
  const FederatedResult healthy = HealthyResult(kSpanningQuery);
  auto r = engine_->ExecuteText(kSpanningQuery);
  // Never a whole-query failure: the surviving endpoint's rows come back.
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->degraded);
  EXPECT_GT(r->NumRows(), 0u);                      // Left fact survives.
  EXPECT_LT(r->NumRows(), healthy.NumRows());       // Right facts lost.
  EXPECT_TRUE(IsSubset(r->rows, healthy.rows));     // Nothing fabricated.
  ASSERT_FALSE(r->errors.empty());
  const EndpointError& err = r->errors.front();
  EXPECT_EQ(err.endpoint, "companies");
  EXPECT_EQ(err.code, StatusCode::kUnavailable);
  EXPECT_FALSE(err.message.empty());
  EXPECT_GT(err.failed_probes, 0u);
  const obs::MetricsSnapshot delta =
      obs::MetricsRegistry::Global().Snapshot().DeltaSince(before);
  EXPECT_GE(delta.counters.at("fed.degraded_queries"), 1u);
  EXPECT_GE(delta.counters.at("fed.endpoint_errors"), 1u);
}

TEST_F(FederationFaultsTest, ProvenanceOnDegradedRowsIsNeverFabricated) {
  BuildStack(FaultProfile::Flaky(), RetryPolicy());
  for (int i = 0; i < 10; ++i) {
    auto r = engine_->ExecuteText(kSpanningQuery);
    ASSERT_TRUE(r.ok()) << r.status();
    for (const ProvenancedRow& row : r->rows) {
      for (const SameAsLink& link : row.links_used) {
        EXPECT_TRUE(links_.Contains(link.left_iri, link.right_iri))
            << link.left_iri << " -> " << link.right_iri;
      }
    }
  }
}

TEST_F(FederationFaultsTest, DegradedRowsAreSubsetOfHealthyAcrossSeeds) {
  const FederatedResult healthy = HealthyResult(kSpanningQuery);
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    SimClock clock;
    FaultProfile flaky = FaultProfile::Flaky();
    FaultInjectedEndpoint faulty_left(left_ep_.get(), FaultProfile::Healthy(),
                                      seed * 100 + 1, &clock);
    FaultInjectedEndpoint faulty_right(right_ep_.get(), flaky, seed * 100 + 2,
                                       &clock);
    RetryPolicy retry;
    retry.max_attempts = 1;  // No retries: maximize observable degradation.
    ResilientEndpoint rl(&faulty_left, retry, CircuitBreakerConfig(),
                         seed * 100 + 3, &clock);
    ResilientEndpoint rr(&faulty_right, retry, CircuitBreakerConfig(),
                         seed * 100 + 4, &clock);
    FederatedEngine engine(&rl, &rr, &links_);
    auto r = engine.ExecuteText(kSpanningQuery);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_TRUE(IsSubset(r->rows, healthy.rows)) << "seed " << seed;
  }
}

TEST_F(FederationFaultsTest, DeterministicForFixedSeed) {
  RetryPolicy retry;
  retry.max_attempts = 2;
  auto run_once = [&] {
    // Same datasets, fresh clock and fresh (same-seeded) decorator stack.
    clock_ = SimClock();
    BuildStack(FaultProfile::Flaky(), retry);
    std::vector<std::string> out;
    for (int i = 0; i < 5; ++i) {
      auto r = engine_->ExecuteText(kSpanningQuery);
      EXPECT_TRUE(r.ok());
      std::string digest = r->degraded ? "degraded:" : "full:";
      for (const auto& row : r->rows) {
        for (const Term& t : row.values) digest += t.value + "|";
      }
      out.push_back(digest);
    }
    out.push_back("t=" + std::to_string(clock_.NowSeconds()));
    return out;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_F(FederationFaultsTest, BreakerOpensUnderSustainedFailureThenRecloses) {
  // The right endpoint is hard-down for its first 12 calls, then recovers.
  // Sustained failure must trip the breaker (fast local rejections); after
  // recovery plus cooldown, the half-open probe must re-close it.
  RetryPolicy retry;
  retry.max_attempts = 2;
  retry.jitter_fraction = 0.0;
  CircuitBreakerConfig breaker;
  breaker.window = 4;
  breaker.min_calls = 2;
  breaker.failure_rate_threshold = 0.5;
  breaker.cooldown_seconds = 2.0;
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  BuildStack(FaultProfile::DownFor(12), retry, breaker);
  const FederatedResult healthy = HealthyResult(kSpanningQuery);

  bool recovered = false;
  for (int i = 0; i < 30 && !recovered; ++i) {
    auto r = engine_->ExecuteText(kSpanningQuery);
    ASSERT_TRUE(r.ok()) << r.status();
    recovered = !r->degraded;
    if (recovered) {
      EXPECT_EQ(r->NumRows(), healthy.NumRows());  // Full answer is back.
    }
    clock_.AdvanceSeconds(1.0);  // Let the cooldown elapse between queries.
  }
  EXPECT_TRUE(recovered) << "endpoint never recovered through the breaker";
  EXPECT_GE(resilient_right_->breaker().times_opened(), 1u);
  EXPECT_EQ(resilient_right_->breaker().state(),
            CircuitBreaker::State::kClosed);
  const obs::MetricsSnapshot delta =
      obs::MetricsRegistry::Global().Snapshot().DeltaSince(before);
  EXPECT_GE(delta.counters.at("fed.breaker_trips"), 1u);
  EXPECT_GE(delta.counters.at("fed.breaker_open"), 1u);
}

TEST_F(FederationFaultsTest, QueryDeadlineExpiryDegradesInsteadOfFailing) {
  // The slow profile's injected latency counts against the query deadline
  // because engine and injector share the SimClock.
  RetryPolicy retry;
  retry.max_attempts = 1;
  BuildStack(FaultProfile::Slow(), retry);
  engine_->SetQueryDeadline(&clock_, /*deadline_seconds=*/0.05);
  auto r = engine_->ExecuteText(kSpanningQuery);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->degraded);
  const auto deadline_error =
      std::find_if(r->errors.begin(), r->errors.end(), [](const auto& e) {
        return e.code == StatusCode::kDeadlineExceeded;
      });
  ASSERT_NE(deadline_error, r->errors.end());
}

/// Full observable state of a result, for cross-mode equivalence checks:
/// row values, link provenance, degraded flag, per-endpoint error detail.
std::string ResultDigest(const Result<FederatedResult>& r) {
  if (!r.ok()) {
    return "error:" + std::to_string(static_cast<int>(r.status().code())) +
           ":" + std::string(r.status().message());
  }
  std::string d = r->degraded ? "degraded|" : "ok|";
  for (const EndpointError& e : r->errors) {
    d += e.endpoint + ":" + std::to_string(static_cast<int>(e.code)) + ":" +
         std::to_string(e.failed_probes) + ";";
  }
  for (const ProvenancedRow& row : r->rows) {
    d += "row:";
    for (const Term& t : row.values) d += t.ToNTriples() + "\x1e";
    for (const SameAsLink& l : row.links_used) {
      d += l.left_iri + "->" + l.right_iri + "\x1f";
    }
  }
  return d;
}

TEST_F(FederationFaultsTest, HealthyStackAllModesAndCacheStatesAgree) {
  // On a healthy stack, all four configurations must be bit-identical:
  // legacy strings, compiled, compiled over a cold probe cache, and
  // compiled over a warm probe cache.
  BuildStack(FaultProfile::Healthy());
  CachingEndpoint cached_left(resilient_left_.get(), ProbeCacheConfig(),
                              [this] { return links_.epoch(); });
  CachingEndpoint cached_right(resilient_right_.get(), ProbeCacheConfig(),
                               [this] { return links_.epoch(); });
  FederatedEngine caching_engine(&cached_left, &cached_right, &links_);

  const std::vector<std::string> queries = {
      kSpanningQuery,
      "SELECT ?who ?o WHERE { ?who <http://l/worksFor> ?org . "
      "?org ?p ?o . }",
      "SELECT DISTINCT ?o WHERE { <http://l/acme> ?p ?o . }",
  };
  for (const std::string& query : queries) {
    engine_->set_execution_mode(
        FederatedEngine::ExecutionMode::kLegacyStrings);
    const std::string legacy = ResultDigest(engine_->ExecuteText(query));
    engine_->set_execution_mode(FederatedEngine::ExecutionMode::kCompiled);
    const std::string compiled = ResultDigest(engine_->ExecuteText(query));
    const std::string cache_cold =
        ResultDigest(caching_engine.ExecuteText(query));
    const std::string cache_warm =
        ResultDigest(caching_engine.ExecuteText(query));
    EXPECT_EQ(legacy, compiled) << query;
    EXPECT_EQ(legacy, cache_cold) << query;
    EXPECT_EQ(legacy, cache_warm) << query;
  }
  EXPECT_GT(cached_left.hits() + cached_right.hits(), 0u);
}

TEST_F(FederationFaultsTest, FaultInjectedModesAgreeAcrossFreshStacks) {
  // Under fault injection, a fresh same-seeded stack per mode must produce
  // identical results: the compiled path (with or without a cold cache in
  // front) issues the exact probe sequence the legacy path does, so the
  // injected fault draws line up one-for-one. Degradation detail included.
  RetryPolicy retry;
  retry.max_attempts = 1;  // No retries: maximize observable degradation.
  const std::vector<std::string> queries = {
      kSpanningQuery,
      "SELECT ?who ?o WHERE { ?who <http://l/worksFor> ?org . "
      "?org ?p ?o . }",
  };
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    for (const std::string& query : queries) {
      auto run = [&](FederatedEngine::ExecutionMode mode, bool with_cache) {
        SimClock clock;
        FaultInjectedEndpoint fl(left_ep_.get(), FaultProfile::Flaky(),
                                 seed * 10 + 1, &clock);
        FaultInjectedEndpoint fr(right_ep_.get(), FaultProfile::Flaky(),
                                 seed * 10 + 2, &clock);
        ResilientEndpoint rl(&fl, retry, CircuitBreakerConfig(),
                             seed * 10 + 3, &clock);
        ResilientEndpoint rr(&fr, retry, CircuitBreakerConfig(),
                             seed * 10 + 4, &clock);
        CachingEndpoint cl(&rl);
        CachingEndpoint cr(&rr);
        FederatedEngine engine(
            with_cache ? static_cast<const QueryEndpoint*>(&cl) : &rl,
            with_cache ? static_cast<const QueryEndpoint*>(&cr) : &rr,
            &links_);
        engine.set_execution_mode(mode);
        return ResultDigest(engine.ExecuteText(query));
      };
      const std::string legacy =
          run(FederatedEngine::ExecutionMode::kLegacyStrings, false);
      const std::string compiled =
          run(FederatedEngine::ExecutionMode::kCompiled, false);
      const std::string cache_cold =
          run(FederatedEngine::ExecutionMode::kCompiled, true);
      EXPECT_EQ(legacy, compiled) << "seed " << seed << ": " << query;
      EXPECT_EQ(legacy, cache_cold) << "seed " << seed << ": " << query;
    }
  }
}

TEST_F(FederationFaultsTest, LinkMutationAfterEpisodeIsVisibleThroughCache) {
  // An episode loop mutates the LinkIndex between queries (EndEpisode
  // applying feedback). The probe cache must not serve answers computed
  // against the old link set: epoch invalidation makes the mutation
  // visible to the very next query.
  BuildStack(FaultProfile::Healthy());
  CachingEndpoint cached_left(resilient_left_.get(), ProbeCacheConfig(),
                              [this] { return links_.epoch(); });
  CachingEndpoint cached_right(resilient_right_.get(), ProbeCacheConfig(),
                               [this] { return links_.epoch(); });
  FederatedEngine engine(&cached_left, &cached_right, &links_);

  auto before = engine.ExecuteText(kSpanningQuery);
  ASSERT_TRUE(before.ok()) << before.status();
  auto warm = engine.ExecuteText(kSpanningQuery);
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(warm->NumRows(), before->NumRows());

  // New link discovered by ALEX: the spanning query must widen immediately.
  right_.AddLiteralTriple("http://r/acme-two", "http://r/hq",
                          Term::Literal("Miami"));
  links_.Add("http://l/acme", "http://r/acme-two");
  auto after = engine.ExecuteText(kSpanningQuery);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_GT(after->NumRows(), before->NumRows());

  // Link retracted (negative feedback): the extra rows disappear again.
  links_.Remove("http://l/acme", "http://r/acme-two");
  auto reverted = engine.ExecuteText(kSpanningQuery);
  ASSERT_TRUE(reverted.ok());
  EXPECT_EQ(ResultDigest(reverted), ResultDigest(before));
}

TEST_F(FederationFaultsTest, AttemptTimeoutConvertsStallsToFastFailures) {
  // A stalled call costs at most the per-attempt timeout of virtual time,
  // not the stall's 30 virtual seconds.
  FaultProfile stall;
  stall.stall_rate = 1.0;
  stall.stall_seconds = 30.0;
  FaultInjectedEndpoint faulty(right_ep_.get(), stall, 5, &clock_);
  CallOptions opts;
  opts.timeout_seconds = 0.5;
  const PatternProbe probe;  // All wildcards.
  const Status st = faulty.Probe(
      probe, opts,
      [](const Term*, const Term*, const Term*) { return true; });
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_DOUBLE_EQ(clock_.NowSeconds(), 0.5);
}

}  // namespace
}  // namespace alex::fed
