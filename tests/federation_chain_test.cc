// Federation behaviours beyond the basic cross-join: multi-hop chains,
// variable predicates across endpoints, and query shapes where only one
// endpoint can answer.

#include <gtest/gtest.h>

#include "federation/federated_engine.h"

namespace alex::fed {
namespace {

using rdf::Term;

class FederationChainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Left: people with employers (IRIs inside the left KB).
    left_.AddIriTriple("http://l/alice", "http://l/worksFor", "http://l/acme");
    left_.AddLiteralTriple("http://l/acme", "http://l/name",
                           Term::Literal("Acme"));
    left_.AddLiteralTriple("http://l/alice", "http://l/name",
                           Term::Literal("Alice"));
    // Right: company headquarters.
    right_.AddLiteralTriple("http://r/acme-corp", "http://r/hq",
                            Term::Literal("Belcaster"));
    right_.AddLiteralTriple("http://r/acme-corp", "http://r/label",
                            Term::Literal("Acme Corporation"));
    links_.Add("http://l/acme", "http://r/acme-corp");
    left_ep_ = std::make_unique<Endpoint>(&left_);
    right_ep_ = std::make_unique<Endpoint>(&right_);
    engine_ = std::make_unique<FederatedEngine>(left_ep_.get(),
                                                right_ep_.get(), &links_);
  }

  rdf::Dataset left_{"hr"};
  rdf::Dataset right_{"companies"};
  LinkIndex links_;
  std::unique_ptr<Endpoint> left_ep_;
  std::unique_ptr<Endpoint> right_ep_;
  std::unique_ptr<FederatedEngine> engine_;
};

TEST_F(FederationChainTest, TwoHopAcrossDatasets) {
  // Alice -> employer (left) -> headquarters (right, via sameAs).
  auto r = engine_->ExecuteText(
      "SELECT ?hq WHERE { "
      "<http://l/alice> <http://l/worksFor> ?c . "
      "?c <http://r/hq> ?hq . }");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->NumRows(), 1u);
  EXPECT_EQ(r->rows[0].values[0], Term::Literal("Belcaster"));
  ASSERT_EQ(r->rows[0].links_used.size(), 1u);
  EXPECT_EQ(r->rows[0].links_used[0].left_iri, "http://l/acme");
}

TEST_F(FederationChainTest, VariablePredicateSpansBothEndpoints) {
  auto r = engine_->ExecuteText(
      "SELECT ?p ?o WHERE { <http://l/acme> ?p ?o . }");
  ASSERT_TRUE(r.ok());
  // Left facts (name) plus right facts via the sameAs link (hq, label).
  EXPECT_EQ(r->NumRows(), 3u);
}

TEST_F(FederationChainTest, RightOnlyQueryNeedsNoLinks) {
  auto r = engine_->ExecuteText(
      "SELECT ?c WHERE { ?c <http://r/hq> \"Belcaster\" . }");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->NumRows(), 1u);
  EXPECT_TRUE(r->rows[0].links_used.empty());
}

TEST_F(FederationChainTest, UnknownPredicateAnswersNothing) {
  auto r = engine_->ExecuteText(
      "SELECT ?o WHERE { <http://l/alice> <http://nowhere/p> ?o . }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 0u);
}

TEST_F(FederationChainTest, ParseErrorsPropagate) {
  auto r = engine_->ExecuteText("SELECT WHERE {}");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST_F(FederationChainTest, LinkRemovalSeversTheChain) {
  links_.Remove("http://l/acme", "http://r/acme-corp");
  auto r = engine_->ExecuteText(
      "SELECT ?hq WHERE { "
      "<http://l/alice> <http://l/worksFor> ?c . "
      "?c <http://r/hq> ?hq . }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 0u);
}

TEST_F(FederationChainTest, MultipleCoReferentsMultiplyAnswers) {
  right_.AddLiteralTriple("http://r/acme-inc", "http://r/hq",
                          Term::Literal("Gildern"));
  // Rebuild endpoints after mutating the dataset (predicate sets cached).
  right_ep_ = std::make_unique<Endpoint>(&right_);
  engine_ = std::make_unique<FederatedEngine>(left_ep_.get(), right_ep_.get(),
                                              &links_);
  links_.Add("http://l/acme", "http://r/acme-inc");
  auto r = engine_->ExecuteText(
      "SELECT ?hq WHERE { "
      "<http://l/alice> <http://l/worksFor> ?c . "
      "?c <http://r/hq> ?hq . }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 2u);
}

}  // namespace
}  // namespace alex::fed
