// TelemetryHub tests: deterministic SimClock-driven sampling (no wall
// sleeps anywhere), SLO evaluation against per-interval histogram deltas,
// error-budget burn over a rolling window, and the JSON / Prometheus
// exports. The headline test injects slowness into a federated endpoint via
// FaultInjectedEndpoint and shows the hub flagging the resulting p99 breach
// — the acceptance criterion of the observability issue.

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/retry.h"
#include "federation/endpoint.h"
#include "federation/fault_injection.h"
#include "federation/federated_engine.h"
#include "obs/metrics.h"
#include "obs/telemetry_hub.h"

namespace alex::obs {
namespace {

using fed::Endpoint;
using fed::FaultInjectedEndpoint;
using fed::FaultProfile;
using fed::FederatedEngine;
using rdf::Term;

TEST(TelemetryHubTest, FirstSampleAlwaysTakenThenIntervalGates) {
  SimClock clock;
  TelemetryHub hub(&clock, /*interval_seconds=*/10.0);
  EXPECT_TRUE(hub.MaybeSample());   // First call always samples.
  EXPECT_FALSE(hub.MaybeSample());  // No time has passed.
  clock.AdvanceSeconds(5.0);
  EXPECT_FALSE(hub.MaybeSample());  // Under the interval.
  clock.AdvanceSeconds(5.0);
  EXPECT_TRUE(hub.MaybeSample());   // Interval elapsed.
  EXPECT_EQ(hub.sample_count(), 2u);
  hub.ForceSample();                // Unconditional.
  EXPECT_EQ(hub.sample_count(), 3u);
}

TEST(TelemetryHubTest, SampleRingDropsOldestBeyondMaxSamples) {
  SimClock clock;
  TelemetryHub hub(&clock, 1.0, /*max_samples=*/3);
  for (int i = 0; i < 6; ++i) {
    hub.ForceSample();
    clock.AdvanceSeconds(1.0);
  }
  const std::vector<TelemetrySample> samples = hub.Samples();
  ASSERT_EQ(samples.size(), 3u);
  // The oldest timestamps were dropped; the newest three survive in order.
  EXPECT_DOUBLE_EQ(samples[0].t_seconds, 3.0);
  EXPECT_DOUBLE_EQ(samples[2].t_seconds, 5.0);
}

TEST(TelemetryHubTest, SamplesCarryRegistryDeltasNotCumulatives) {
  SimClock clock;
  Counter& counter =
      MetricsRegistry::Global().counter("obs_test.hub.delta_counter");
  counter.Add(100);  // Pre-hub activity must not leak into later deltas.

  TelemetryHub hub(&clock, 1.0);
  hub.ForceSample();  // Baseline.
  counter.Add(7);
  clock.AdvanceSeconds(1.0);
  hub.ForceSample();

  const std::vector<TelemetrySample> samples = hub.Samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[1].delta.counters.at("obs_test.hub.delta_counter"), 7u);
}

TEST(TelemetryHubTest, SloSkipsIntervalsWithNoTraffic) {
  SimClock clock;
  MetricsRegistry::Global().histogram("obs_test.hub.idle_hist", {0.1, 1.0});
  TelemetryHub hub(&clock, 1.0);
  SloConfig slo;
  slo.name = "idle_p99";
  slo.histogram = "obs_test.hub.idle_hist";
  slo.target_seconds = 0.5;
  hub.AddSlo(slo);

  hub.ForceSample();
  clock.AdvanceSeconds(1.0);
  hub.ForceSample();  // No observations in the interval.

  const std::vector<TelemetrySample> samples = hub.Samples();
  ASSERT_EQ(samples.size(), 2u);
  ASSERT_EQ(samples[1].slos.size(), 1u);
  EXPECT_FALSE(samples[1].slos[0].evaluated);
  EXPECT_FALSE(samples[1].slos[0].breached);
  EXPECT_EQ(hub.breach_count(), 0u);
}

TEST(TelemetryHubTest, SustainedBreachesExhaustErrorBudget) {
  SimClock clock;
  Histogram& hist =
      MetricsRegistry::Global().histogram("obs_test.hub.burn_hist",
                                          {0.01, 0.1, 1.0});
  TelemetryHub hub(&clock, 1.0);
  SloConfig slo;
  slo.name = "burn_p99";
  slo.histogram = "obs_test.hub.burn_hist";
  slo.quantile = 0.99;
  slo.target_seconds = 0.01;      // Everything below breaches it.
  slo.burn_window_seconds = 10.0;
  slo.budget_fraction = 0.1;      // >10% of intervals in breach = exhausted.
  hub.AddSlo(slo);
  hub.ForceSample();  // Baseline.

  const uint64_t breaches_before = hub.breach_count();
  for (int i = 0; i < 5; ++i) {
    hist.Observe(0.5);  // p99 of the interval = well above 10ms.
    clock.AdvanceSeconds(1.0);
    hub.ForceSample();
  }
  EXPECT_EQ(hub.breach_count() - breaches_before, 5u);

  const std::vector<TelemetrySample> samples = hub.Samples();
  const SloSample& last = samples.back().slos[0];
  EXPECT_TRUE(last.evaluated);
  EXPECT_TRUE(last.breached);
  EXPECT_GT(last.observed_seconds, slo.target_seconds);
  // Every evaluated interval in the window breached.
  EXPECT_DOUBLE_EQ(last.burn_rate, 1.0);
  EXPECT_TRUE(last.budget_exhausted);
}

TEST(TelemetryHubTest, BreachesFeedTheRegistryBreachCounter) {
  SimClock clock;
  Histogram& hist = MetricsRegistry::Global().histogram(
      "obs_test.hub.counter_hist", {0.01, 1.0});
  const MetricsSnapshot before = MetricsRegistry::Global().Snapshot();

  TelemetryHub hub(&clock, 1.0);
  SloConfig slo;
  slo.name = "counter_p50";
  slo.histogram = "obs_test.hub.counter_hist";
  slo.quantile = 0.5;
  slo.target_seconds = 0.001;
  hub.AddSlo(slo);
  hub.ForceSample();
  hist.Observe(0.9);
  clock.AdvanceSeconds(1.0);
  hub.ForceSample();

  const MetricsSnapshot delta =
      MetricsRegistry::Global().Snapshot().DeltaSince(before);
  EXPECT_GE(delta.counters.at("obs.slo_breaches"), 1u);
}

TEST(TelemetryHubTest, DetectsInjectedP99BreachInFederatedStack) {
  // Acceptance criterion: a FaultInjectedEndpoint made slow (virtual
  // latency on the shared SimClock) must surface as a deterministic p99 SLO
  // breach. The engine measures query latency on the injected clock, so the
  // whole scenario runs in microseconds of wall time.
  rdf::Dataset left("hr");
  rdf::Dataset right("companies");
  left.AddIriTriple("http://l/alice", "http://l/worksFor", "http://l/acme");
  left.AddLiteralTriple("http://l/acme", "http://l/name",
                        Term::Literal("Acme"));
  right.AddLiteralTriple("http://r/acme-corp", "http://r/hq",
                         Term::Literal("Belcaster"));
  fed::LinkIndex links;
  links.Add("http://l/acme", "http://r/acme-corp");
  Endpoint left_ep(&left);
  Endpoint right_ep(&right);

  SimClock clock;
  // Slow: 0.2s base latency plus jitter on every probe.
  FaultInjectedEndpoint slow_left(&left_ep, FaultProfile::Slow(), 31, &clock);
  FaultInjectedEndpoint slow_right(&right_ep, FaultProfile::Slow(), 32,
                                   &clock);
  FederatedEngine engine(&slow_left, &slow_right, &links);
  // Installs the SimClock as the engine's latency clock; the huge deadline
  // never expires.
  engine.SetQueryDeadline(&clock, /*deadline_seconds=*/1e9);

  TelemetryHub hub(&clock, /*interval_seconds=*/1.0);
  SloConfig slo;
  slo.name = "fed_query_p99";
  slo.histogram = "fed.query_seconds";
  slo.quantile = 0.99;
  slo.target_seconds = 0.05;  // 50ms target vs ~0.2s/probe injected.
  hub.AddSlo(slo);
  hub.ForceSample();  // Baseline excludes other tests' queries.

  for (int i = 0; i < 5; ++i) {
    auto r = engine.ExecuteText(
        "SELECT ?p ?o WHERE { <http://l/acme> ?p ?o . }");
    ASSERT_TRUE(r.ok()) << r.status();
    hub.MaybeSample();  // Probe latency advanced the clock past 1s.
  }

  EXPECT_GE(hub.breach_count(), 1u);
  bool saw_breach = false;
  for (const TelemetrySample& sample : hub.Samples()) {
    for (const SloSample& s : sample.slos) {
      if (s.evaluated && s.breached) {
        saw_breach = true;
        EXPECT_GT(s.observed_seconds, slo.target_seconds);
      }
    }
  }
  EXPECT_TRUE(saw_breach);

  // The scenario is deterministic: same seeds, same virtual timeline.
  EXPECT_GT(clock.NowSeconds(), 1.0);
}

TEST(TelemetryHubTest, JsonTimelineIsBalancedAndCarriesSlos) {
  SimClock clock;
  Histogram& hist = MetricsRegistry::Global().histogram(
      "obs_test.hub.json_hist", {0.01, 1.0});
  TelemetryHub hub(&clock, 1.0);
  SloConfig slo;
  slo.name = "json_p99";
  slo.histogram = "obs_test.hub.json_hist";
  slo.target_seconds = 0.001;
  hub.AddSlo(slo);
  hub.ForceSample();
  hist.Observe(0.5);
  clock.AdvanceSeconds(1.0);
  hub.ForceSample();

  std::ostringstream os;
  hub.WriteJsonTimeline(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"interval_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"slos\""), std::string::npos);
  EXPECT_NE(json.find("\"samples\""), std::string::npos);
  EXPECT_NE(json.find("\"json_p99\""), std::string::npos);
  EXPECT_NE(json.find("\"t_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"breached\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(TelemetryHubTest, PrometheusExportCarriesSloGauges) {
  SimClock clock;
  Histogram& hist = MetricsRegistry::Global().histogram(
      "obs_test.hub.prom_hist", {0.01, 1.0});
  TelemetryHub hub(&clock, 1.0);
  SloConfig slo;
  slo.name = "prom_p99";
  slo.histogram = "obs_test.hub.prom_hist";
  slo.target_seconds = 0.001;
  hub.AddSlo(slo);
  hub.ForceSample();
  hist.Observe(0.5);
  clock.AdvanceSeconds(1.0);
  hub.ForceSample();

  std::ostringstream os;
  hub.WritePrometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("alex_slo_breached{slo=\"prom_p99\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("alex_slo_burn_rate{slo=\"prom_p99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("alex_slo_observed_seconds{slo=\"prom_p99\"}"),
            std::string::npos);
  // The cumulative registry state rides along, sanitized.
  EXPECT_NE(text.find("obs_test_hub_prom_hist_bucket{le=\"+Inf\"}"),
            std::string::npos);
}

}  // namespace
}  // namespace alex::obs
