#include "similarity/similarity.h"

#include <gtest/gtest.h>

namespace alex::sim {
namespace {

using rdf::Term;

TEST(NumericSimilarityTest, EqualIsOne) {
  EXPECT_DOUBLE_EQ(NumericSimilarity(5.0, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(NumericSimilarity(0.0, 0.0), 1.0);
}

TEST(NumericSimilarityTest, SteepDecay) {
  // 1% relative difference -> ~0.8; 5%+ -> 0.
  EXPECT_NEAR(NumericSimilarity(100.0, 101.0), 1.0 - 20.0 / 101.0, 1e-9);
  EXPECT_DOUBLE_EQ(NumericSimilarity(100.0, 111.2), 0.0);
  EXPECT_DOUBLE_EQ(NumericSimilarity(1.0, 2.0), 0.0);
}

TEST(NumericSimilarityTest, SymmetricAndBounded) {
  EXPECT_DOUBLE_EQ(NumericSimilarity(3.0, 4.0), NumericSimilarity(4.0, 3.0));
  EXPECT_GE(NumericSimilarity(-5.0, 5.0), 0.0);
}

TEST(NumericSimilarityTest, SmallMagnitudesUseFloorDenominator) {
  // Denominator floors at 1 so near-zero values don't explode.
  EXPECT_NEAR(NumericSimilarity(0.01, 0.02), 1.0 - 20.0 * 0.01, 1e-9);
}

TEST(DateSimilarityTest, Decay) {
  EXPECT_DOUBLE_EQ(DateSimilarity(100, 100), 1.0);
  EXPECT_NEAR(DateSimilarity(0, 73), 1.0 - 73.0 / 547.0, 1e-9);
  EXPECT_DOUBLE_EQ(DateSimilarity(0, 547), 0.0);     // Eighteen months.
  EXPECT_DOUBLE_EQ(DateSimilarity(0, 10000), 0.0);
  EXPECT_DOUBLE_EQ(DateSimilarity(0, -73), DateSimilarity(0, 73));
}

TEST(StringSimilarityTest, SharpOnUnrelatedStrings) {
  EXPECT_DOUBLE_EQ(StringSimilarity("Belcaster", "Quillian"), 0.0);
  EXPECT_LT(StringSimilarity("Tasopra Elkonomi", "Norvek Durrenba"), 0.3);
}

TEST(StringSimilarityTest, CaseInsensitiveExactIsOne) {
  EXPECT_DOUBLE_EQ(StringSimilarity("LeBron James", "lebron JAMES"), 1.0);
}

TEST(StringSimilarityTest, TokenReorderIsOne) {
  EXPECT_DOUBLE_EQ(StringSimilarity("LeBron James", "James, LeBron"), 1.0);
}

TEST(StringSimilarityTest, TypoScoresHigh) {
  const double sim = StringSimilarity("Tasopra Elkonomi", "Tasopra Elkonmi");
  EXPECT_GT(sim, 0.6);
  EXPECT_LT(sim, 1.0);
}

TEST(ValueSimilarityTest, DispatchesNumeric) {
  TypedValue a = ParseValue(Term::Literal("100"));
  TypedValue b = ParseValue(Term::Literal("100.0"));
  EXPECT_DOUBLE_EQ(ValueSimilarity(a, b), 1.0);  // Integer vs double: numeric.
}

TEST(ValueSimilarityTest, DispatchesDates) {
  TypedValue a = ParseValue(Term::Literal("1990-01-01"));
  TypedValue b = ParseValue(Term::Literal("1990-01-01"));
  EXPECT_DOUBLE_EQ(ValueSimilarity(a, b), 1.0);
}

TEST(ValueSimilarityTest, MixedTypesFallBackToStrings) {
  TypedValue num = ParseValue(Term::Literal("1990"));
  TypedValue str = ParseValue(Term::Literal("1990-ish"));
  const double sim = ValueSimilarity(num, str);
  EXPECT_GE(sim, 0.0);
  EXPECT_LE(sim, 1.0);
}

TEST(TermSimilarityTest, EndToEnd) {
  EXPECT_DOUBLE_EQ(
      TermSimilarity(Term::Literal("Alpha Beta"), Term::Literal("Beta Alpha")),
      1.0);
  EXPECT_DOUBLE_EQ(TermSimilarity(Term::Iri("http://x/class/Person"),
                                  Term::Iri("http://y/type#Person")),
                   1.0);
  EXPECT_DOUBLE_EQ(
      TermSimilarity(
          Term::TypedLiteral("10", std::string(rdf::kXsdInteger)),
          Term::TypedLiteral("20", std::string(rdf::kXsdInteger))),
      0.0);
}

TEST(TermSimilarityTest, RangeInvariant) {
  const Term terms[] = {
      Term::Literal("abc"), Term::Literal("12"), Term::Literal("1.5"),
      Term::Literal("2001-05-06"), Term::Iri("http://x/Name"),
      Term::Literal("")};
  for (const Term& a : terms) {
    for (const Term& b : terms) {
      const double s = TermSimilarity(a, b);
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
      EXPECT_DOUBLE_EQ(s, TermSimilarity(b, a));
    }
  }
}

}  // namespace
}  // namespace alex::sim
