#include "core/blocking.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "rdf/dataset.h"
#include "similarity/value.h"

namespace alex::core {
namespace {

using rdf::Term;

TEST(HashBlockKeyTest, DeterministicAndKindSeparated) {
  EXPECT_EQ(HashBlockKey(BlockKind::kValue, "lebron james"),
            HashBlockKey(BlockKind::kValue, "lebron james"));
  // The same text under different kinds must land in different blocks
  // (the legacy scheme's "v:" / "t:" / "p:" namespacing).
  EXPECT_NE(HashBlockKey(BlockKind::kValue, "lebron"),
            HashBlockKey(BlockKind::kToken, "lebron"));
  EXPECT_NE(HashBlockKey(BlockKind::kToken, "lebron"),
            HashBlockKey(BlockKind::kPrefix, "lebron"));
  EXPECT_NE(HashBlockKey(BlockKind::kValue, "a"),
            HashBlockKey(BlockKind::kValue, "b"));
}

TEST(ComputeTermBlockingKeysTest, MatchesLegacyKeyStructure) {
  // "Lebron James" -> value key, two token keys, one prefix key ("lebro").
  std::vector<BlockKey> keys;
  ComputeTermBlockingKeys(Term::Literal("Lebron James"), &keys);
  std::vector<BlockKey> expected = {
      HashBlockKey(BlockKind::kValue, "lebron james"),
      HashBlockKey(BlockKind::kToken, "lebron"),
      HashBlockKey(BlockKind::kToken, "james"),
      HashBlockKey(BlockKind::kPrefix, "lebro"),
  };
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(keys, expected);

  // Single-character tokens are skipped; short tokens carry no prefix key.
  ComputeTermBlockingKeys(Term::Literal("a bc"), &keys);
  expected = {HashBlockKey(BlockKind::kValue, "a bc"),
              HashBlockKey(BlockKind::kToken, "bc")};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(keys, expected);

  // IRIs are keyed by their lowercased local name, like the legacy path.
  ComputeTermBlockingKeys(Term::Iri("http://x/Lebron_James"), &keys);
  std::vector<BlockKey> iri_keys = keys;
  ComputeTermBlockingKeys(Term::Literal("lebron_james"), &keys);
  EXPECT_EQ(iri_keys, keys);

  ComputeTermBlockingKeys(Term::Literal(""), &keys);
  EXPECT_TRUE(keys.empty());
}

class TermKeyCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Two entities share the literal "Common Value"; e0 also repeats it
    // under a second predicate (same TermId, two occurrences).
    ds_.AddLiteralTriple("http://d/e0", "http://d/name",
                         Term::Literal("Common Value"));
    ds_.AddLiteralTriple("http://d/e0", "http://d/alias",
                         Term::Literal("Common Value"));
    ds_.AddLiteralTriple("http://d/e0", "http://d/note",
                         Term::Literal("Unique Zorp"));
    ds_.AddLiteralTriple("http://d/e1", "http://d/name",
                         Term::Literal("Common Value"));
    ds_.BuildEntityIndex();
  }

  rdf::Dataset ds_{"d"};
};

TEST_F(TermKeyCacheTest, SameTermIdSameCachedKeysNoRecompute) {
  TermKeyCache cache(ds_);
  // Two distinct object terms exist; each was computed exactly once even
  // though "Common Value" occurs three times across entities.
  EXPECT_EQ(cache.computed_terms(), 2u);

  const auto common = ds_.dict().Lookup(Term::Literal("Common Value"));
  ASSERT_TRUE(common.has_value());
  const std::span<const BlockKey> first = cache.keys(*common);
  const std::span<const BlockKey> second = cache.keys(*common);
  // Same TermId -> the same cached storage, byte for byte: lookups return
  // the memoized keys rather than recomputing.
  EXPECT_EQ(first.data(), second.data());
  EXPECT_EQ(first.size(), second.size());
  EXPECT_EQ(cache.computed_terms(), 2u);

  // The cached keys equal a direct computation for the same term.
  std::vector<BlockKey> direct;
  ComputeTermBlockingKeys(ds_.dict().term(*common), &direct);
  EXPECT_TRUE(std::equal(first.begin(), first.end(), direct.begin(),
                         direct.end()));
}

TEST_F(TermKeyCacheTest, EntityKeysAreDeduplicatedUnion) {
  TermKeyCache cache(ds_);
  const auto e0 = ds_.FindEntityByIri("http://d/e0");
  ASSERT_TRUE(e0.has_value());
  std::vector<BlockKey> keys;
  cache.EntityKeys(*e0, &keys);
  // e0 carries "Common Value" twice and "Unique Zorp" once; the union is
  // deduplicated and sorted (set semantics, as the legacy string sets had).
  std::vector<BlockKey> expected;
  std::vector<BlockKey> term_keys;
  ComputeTermBlockingKeys(Term::Literal("Common Value"), &term_keys);
  expected.insert(expected.end(), term_keys.begin(), term_keys.end());
  ComputeTermBlockingKeys(Term::Literal("Unique Zorp"), &term_keys);
  expected.insert(expected.end(), term_keys.begin(), term_keys.end());
  std::sort(expected.begin(), expected.end());
  expected.erase(std::unique(expected.begin(), expected.end()),
                 expected.end());
  EXPECT_EQ(keys, expected);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST_F(TermKeyCacheTest, NonObjectTermsHaveNoKeys) {
  TermKeyCache cache(ds_);
  // Predicates and subject IRIs never reach the blocking loop.
  const auto pred = ds_.dict().Lookup(Term::Iri("http://d/name"));
  ASSERT_TRUE(pred.has_value());
  EXPECT_TRUE(cache.keys(*pred).empty());
  EXPECT_TRUE(cache.keys(rdf::TermId{999999}).empty());
}

TEST_F(TermKeyCacheTest, ValueCacheMatchesDirectParse) {
  ValueCache values(ds_);
  const auto common = ds_.dict().Lookup(Term::Literal("Common Value"));
  ASSERT_TRUE(common.has_value());
  const sim::TypedValue& cached = values.value(*common);
  const sim::TypedValue direct = sim::ParseValue(ds_.dict().term(*common));
  EXPECT_EQ(cached.kind, direct.kind);
  EXPECT_EQ(cached.text, direct.text);
  // Stable storage: repeated lookups alias the same cached object.
  EXPECT_EQ(&values.value(*common), &cached);
}

TEST(ValueCacheTypedTest, NumericAndDateTermsParseOnce) {
  rdf::Dataset ds("d");
  ds.AddLiteralTriple("http://d/e0", "http://d/year", Term::Literal("1984"));
  ds.AddLiteralTriple("http://d/e0", "http://d/born",
                      Term::Literal("1984-12-30"));
  ds.AddLiteralTriple("http://d/e0", "http://d/height",
                      Term::Literal("2.06"));
  ds.BuildEntityIndex();
  ValueCache values(ds);
  const auto year = ds.dict().Lookup(Term::Literal("1984"));
  const auto born = ds.dict().Lookup(Term::Literal("1984-12-30"));
  const auto height = ds.dict().Lookup(Term::Literal("2.06"));
  ASSERT_TRUE(year && born && height);
  EXPECT_EQ(values.value(*year).kind, sim::ValueKind::kInteger);
  EXPECT_EQ(values.value(*year).integer, 1984);
  EXPECT_EQ(values.value(*born).kind, sim::ValueKind::kDate);
  EXPECT_EQ(values.value(*height).kind, sim::ValueKind::kDouble);
  EXPECT_DOUBLE_EQ(values.value(*height).real, 2.06);
}

TEST(BlockingIndexTest, InvertsRightDatasetOnce) {
  rdf::Dataset right("r");
  right.AddLiteralTriple("http://r/a", "http://r/name",
                         Term::Literal("Shared Token Alpha"));
  right.AddLiteralTriple("http://r/b", "http://r/name",
                         Term::Literal("Shared Token Beta"));
  right.AddLiteralTriple("http://r/c", "http://r/name",
                         Term::Literal("Lonely"));
  right.BuildEntityIndex();
  BlockingIndex index(right);
  EXPECT_GT(index.num_blocks(), 0u);

  const auto a = right.FindEntityByIri("http://r/a");
  const auto b = right.FindEntityByIri("http://r/b");
  const auto c = right.FindEntityByIri("http://r/c");
  ASSERT_TRUE(a && b && c);

  // "shared" and "token" tokens block a and b together, in ascending order.
  const std::vector<rdf::EntityId>* block =
      index.block(HashBlockKey(BlockKind::kToken, "shared"));
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(*block, (std::vector<rdf::EntityId>{*a, *b}));

  // The full-value key isolates each entity.
  block = index.block(HashBlockKey(BlockKind::kValue, "lonely"));
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(*block, std::vector<rdf::EntityId>{*c});

  // Unknown keys have no block.
  EXPECT_EQ(index.block(HashBlockKey(BlockKind::kValue, "absent")), nullptr);

  // The index exposes the right dataset's memoized term keys.
  EXPECT_EQ(index.term_keys().computed_terms(), 3u);
}

}  // namespace
}  // namespace alex::core
