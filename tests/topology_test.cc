#include "exec/topology.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/affinity.h"

namespace alex::exec {
namespace {

namespace fs = std::filesystem;

// --- ParseCpuList ---------------------------------------------------------

TEST(ParseCpuListTest, SingleCpu) {
  EXPECT_EQ(ParseCpuList("0"), (std::vector<int>{0}));
  EXPECT_EQ(ParseCpuList("7"), (std::vector<int>{7}));
}

TEST(ParseCpuListTest, Range) {
  EXPECT_EQ(ParseCpuList("0-3"), (std::vector<int>{0, 1, 2, 3}));
}

TEST(ParseCpuListTest, MixedRangesAndSingles) {
  EXPECT_EQ(ParseCpuList("0-2,5,8-9"), (std::vector<int>{0, 1, 2, 5, 8, 9}));
}

TEST(ParseCpuListTest, ToleratesWhitespaceAndNewline) {
  // Kernel cpulist files end with a newline.
  EXPECT_EQ(ParseCpuList(" 0-1 ,3\n"), (std::vector<int>{0, 1, 3}));
}

TEST(ParseCpuListTest, SortsAndDeduplicates) {
  EXPECT_EQ(ParseCpuList("3,1,1-2"), (std::vector<int>{1, 2, 3}));
}

TEST(ParseCpuListTest, EmptyAndMalformedInputsYieldParsedPrefix) {
  EXPECT_TRUE(ParseCpuList("").empty());
  EXPECT_TRUE(ParseCpuList("\n").empty());
  EXPECT_TRUE(ParseCpuList("abc").empty());
  // Valid ids before the malformation survive.
  EXPECT_EQ(ParseCpuList("0-1,x"), (std::vector<int>{0, 1}));
  // Inverted ranges contribute nothing.
  EXPECT_TRUE(ParseCpuList("5-2").empty());
}

// --- ProbeAt over a fabricated sysfs tree ---------------------------------

class FakeSysfs {
 public:
  FakeSysfs() {
    root_ = fs::temp_directory_path() /
            ("alex_topo_test_" + std::to_string(::getpid()));
    fs::create_directories(root_ / "devices/system/node");
  }
  ~FakeSysfs() {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  void AddNode(int node, const std::string& cpulist) {
    const fs::path dir =
        root_ / "devices/system/node" / ("node" + std::to_string(node));
    fs::create_directories(dir);
    std::ofstream(dir / "cpulist") << cpulist << "\n";
  }

  std::string root() const { return root_.string(); }

 private:
  fs::path root_;
};

TEST(CpuTopologyTest, ProbeAtReadsFabricatedNodes) {
  FakeSysfs sysfs;
  // Two nodes; the process's allowed CPUs (from the real affinity mask)
  // intersect whatever this runner has, so map every plausible id: node 0
  // gets the even half of 0-255, node 1 the odd half.
  std::string evens, odds;
  for (int c = 0; c < 256; c += 2) {
    evens += (evens.empty() ? "" : ",") + std::to_string(c);
    odds += (odds.empty() ? "" : ",") + std::to_string(c + 1);
  }
  sysfs.AddNode(0, evens);
  sysfs.AddNode(1, odds);
  const CpuTopology topo = CpuTopology::ProbeAt(sysfs.root());
  ASSERT_GE(topo.num_cpus(), 1u);
  for (const CpuInfo& info : topo.cpus()) {
    EXPECT_EQ(info.node, info.cpu % 2 == 0 ? 0 : 1)
        << "cpu " << info.cpu << " mapped to wrong node";
  }
}

TEST(CpuTopologyTest, ProbeAtMissingSysfsFallsBackToSingleNode) {
  const CpuTopology topo = CpuTopology::ProbeAt("/nonexistent/sysfs/root");
  EXPECT_GE(topo.num_cpus(), 1u);
  EXPECT_EQ(topo.num_nodes(), 1u);
  for (const CpuInfo& info : topo.cpus()) EXPECT_EQ(info.node, 0);
}

TEST(CpuTopologyTest, ProbeNeverReturnsEmpty) {
  const CpuTopology topo = CpuTopology::Probe();
  EXPECT_GE(topo.num_cpus(), 1u);
  EXPECT_GE(topo.num_nodes(), 1u);
  EXPECT_GE(topo.RecommendedWorkers(), 1u);
}

TEST(CpuTopologyTest, DetectIsCachedAndStable) {
  const CpuTopology& a = CpuTopology::Detect();
  const CpuTopology& b = CpuTopology::Detect();
  EXPECT_EQ(&a, &b);
}

TEST(CpuTopologyTest, NodeQueriesOnForTestingTopology) {
  const CpuTopology topo = CpuTopology::ForTesting(
      {{0, 0}, {1, 0}, {2, 1}, {3, 1}}, /*affinity_supported=*/true);
  EXPECT_EQ(topo.num_cpus(), 4u);
  EXPECT_EQ(topo.num_nodes(), 2u);
  EXPECT_EQ(topo.NodeOfCpu(1), 0);
  EXPECT_EQ(topo.NodeOfCpu(3), 1);
  EXPECT_EQ(topo.NodeOfCpu(99), 0);  // Unknown id: safe default.
  EXPECT_EQ(topo.CpusOnNode(0), (std::vector<int>{0, 1}));
  EXPECT_EQ(topo.CpusOnNode(1), (std::vector<int>{2, 3}));
  EXPECT_TRUE(topo.CpusOnNode(7).empty());
  EXPECT_EQ(topo.RecommendedWorkers(), 4u);
}

// --- Pinning degradation --------------------------------------------------

TEST(AffinityTest, PinToBogusCpuFailsWithoutSideEffects) {
  // An out-of-range id must return false, not crash or abort; the calling
  // thread keeps running (on restricted runners every pin attempt looks
  // like this).
  EXPECT_FALSE(PinCurrentThreadToCpu(1 << 20));
  EXPECT_FALSE(PinCurrentThreadToCpu(-1));
  SUCCEED() << "thread still alive after failed pin";
}

TEST(AffinityTest, PinToAllowedCpuMatchesProbe) {
  const CpuTopology topo = CpuTopology::Probe();
  if (!topo.affinity_supported()) {
    GTEST_SKIP() << "affinity syscalls unavailable in this environment";
  }
  // Pinning to a CPU the mask allows must succeed.
  EXPECT_TRUE(PinCurrentThreadToCpu(topo.cpus().front().cpu));
}

TEST(AffinityTest, ThreadNamingAndCurrentCpuAreBestEffort) {
  SetCurrentThreadName("alex-topo-test-name-longer-than-15");  // Truncated.
  const int cpu = CurrentCpu();
  EXPECT_GE(cpu, -1);  // -1 = unknown is acceptable; a crash is not.
}

}  // namespace
}  // namespace alex::exec
