// Equivalence guarantee of the shared-BlockingIndex build (core/blocking.h):
// the optimization must change no observable behaviour. For every partition
// split, the optimized LinkSpace::Build and the legacy per-partition
// BuildLegacy must agree on the kept-pair set, every build stat, and every
// pair's exact feature set (keys and double scores) — on scenarios from the
// synthetic generator, not just toy fixtures.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/link_space.h"
#include "core/partitioned.h"
#include "datagen/generator.h"

namespace alex::core {
namespace {

std::vector<PairKey> SortedPairs(const LinkSpace& space) {
  std::vector<PairKey> pairs = space.pairs();
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

void ExpectStatsEqual(const LinkSpace::BuildStats& a,
                      const LinkSpace::BuildStats& b) {
  EXPECT_EQ(a.total_possible, b.total_possible);
  EXPECT_EQ(a.candidate_pairs, b.candidate_pairs);
  EXPECT_EQ(a.kept_pairs, b.kept_pairs);
  EXPECT_EQ(a.features_indexed, b.features_indexed);
}

void ExpectFeatureSetsEqual(const FeatureSet& a, const FeatureSet& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    // Exact double equality: the cached and uncached paths must run the
    // same arithmetic on the same parsed values.
    EXPECT_EQ(a[i].score, b[i].score);
  }
}

/// Builds the same partition with the optimized and legacy paths and
/// asserts the results are indistinguishable.
void ExpectEquivalentBuilds(const datagen::GeneratedPair& pair,
                            const std::vector<rdf::EntityId>& lefts,
                            const BuildResources& res, double theta,
                            size_t max_block_pairs) {
  LinkSpace optimized;
  optimized.Build(pair.left, pair.right, lefts, theta, max_block_pairs, res);
  LinkSpace legacy;
  legacy.BuildLegacy(pair.left, pair.right, lefts, theta, max_block_pairs);

  ExpectStatsEqual(optimized.stats(), legacy.stats());
  const std::vector<PairKey> pairs = SortedPairs(optimized);
  ASSERT_EQ(pairs, SortedPairs(legacy));
  EXPECT_EQ(optimized.num_features(), legacy.num_features());
  EXPECT_EQ(optimized.MaxFeatureCount(), legacy.MaxFeatureCount());

  for (PairKey key : pairs) {
    const FeatureSet* fs_opt = optimized.FeaturesOf(key);
    const FeatureSet* fs_leg = legacy.FeaturesOf(key);
    ASSERT_NE(fs_opt, nullptr);
    ASSERT_NE(fs_leg, nullptr);
    ExpectFeatureSetsEqual(*fs_opt, *fs_leg);
    // Also pin both against the uncached direct computation, so a
    // ValueCache bug cannot hide behind a matching legacy-path bug.
    const FeatureSet direct = ComputeFeatureSet(
        pair.left, feedback::PairLeft(key), pair.right,
        feedback::PairRight(key), theta);
    ExpectFeatureSetsEqual(*fs_opt, direct);
    // Per-feature index sizes agree for every feature this pair carries.
    for (const FeatureValue& f : *fs_opt) {
      EXPECT_EQ(optimized.FeatureCount(f.key), legacy.FeatureCount(f.key));
    }
  }
}

void RunScenarioEquivalence(const datagen::ScenarioConfig& config,
                            size_t max_block_pairs) {
  const datagen::GeneratedPair pair = datagen::GenerateScenario(config);
  const BlockingIndex right_index(pair.right);
  const TermKeyCache left_keys(pair.left);
  const ValueCache left_values(pair.left);
  const ValueCache right_values(pair.right);
  const BuildResources res{&right_index, &left_keys, &left_values,
                           &right_values};

  for (size_t partitions : {size_t{1}, size_t{3}}) {
    std::vector<std::vector<rdf::EntityId>> splits(partitions);
    for (rdf::EntityId e = 0; e < pair.left.num_entities(); ++e) {
      splits[e % partitions].push_back(e);
    }
    for (const auto& lefts : splits) {
      ExpectEquivalentBuilds(pair, lefts, res, 0.3, max_block_pairs);
    }
  }
}

TEST(BlockingEquivalenceTest, NoisyPersonScenario) {
  // Heavy value noise: the token/prefix blocks do the recall work, so the
  // hashed-key path is exercised well beyond exact-value matches.
  datagen::ScenarioConfig config;
  config.name = "equiv_noisy";
  config.seed = 1313;
  config.num_shared = 70;
  config.num_left_only = 60;
  config.num_right_only = 30;
  config.domains = {"person"};
  config.value_noise = 0.6;
  config.predicate_rename_prob = 0.4;
  RunScenarioEquivalence(config, 20000);
}

TEST(BlockingEquivalenceTest, AmbiguousMultiDomainScenarioWithTightCap) {
  // Decoys create big shared-name blocks and the tight cap forces the
  // stop-value skip logic to fire, which is where a divergence between the
  // per-partition left counts of the two paths would show up.
  datagen::ScenarioConfig config;
  config.name = "equiv_ambiguous";
  config.seed = 2718;
  config.num_shared = 50;
  config.num_left_only = 40;
  config.num_right_only = 25;
  config.domains = {"person", "organization", "drug"};
  config.value_noise = 0.3;
  config.ambiguity = 0.8;
  RunScenarioEquivalence(config, 150);
}

TEST(BlockingEquivalenceTest, SingleShotWrapperMatchesLegacy) {
  datagen::ScenarioConfig config;
  config.seed = 99;
  config.num_shared = 40;
  config.num_left_only = 30;
  config.num_right_only = 20;
  config.domains = {"place"};
  config.value_noise = 0.4;
  const datagen::GeneratedPair pair = datagen::GenerateScenario(config);
  std::vector<rdf::EntityId> lefts;
  for (rdf::EntityId e = 0; e < pair.left.num_entities(); ++e) {
    lefts.push_back(e);
  }
  LinkSpace wrapped;
  wrapped.Build(pair.left, pair.right, lefts, 0.3, 20000);
  LinkSpace legacy;
  legacy.BuildLegacy(pair.left, pair.right, lefts, 0.3, 20000);
  ExpectStatsEqual(wrapped.stats(), legacy.stats());
  EXPECT_EQ(SortedPairs(wrapped), SortedPairs(legacy));
}

TEST(BlockingEquivalenceTest, PartitionedBuildMatchesLegacyMode) {
  datagen::ScenarioConfig scenario;
  scenario.seed = 4242;
  scenario.num_shared = 60;
  scenario.num_left_only = 50;
  scenario.num_right_only = 25;
  scenario.domains = {"person", "publication"};
  scenario.value_noise = 0.5;
  const datagen::GeneratedPair pair = datagen::GenerateScenario(scenario);

  AlexConfig config;
  config.num_partitions = 4;
  config.num_threads = 2;

  PartitionedAlex shared(&pair.left, &pair.right, config);
  shared.Build();
  EXPECT_GT(shared.shared_index_seconds(), 0.0);

  config.shared_blocking_index = false;
  PartitionedAlex legacy(&pair.left, &pair.right, config);
  legacy.Build();
  EXPECT_EQ(legacy.shared_index_seconds(), 0.0);

  for (size_t p = 0; p < shared.num_partitions(); ++p) {
    EXPECT_EQ(SortedPairs(shared.space(p)), SortedPairs(legacy.space(p)));
    ExpectStatsEqual(shared.space(p).stats(), legacy.space(p).stats());
    EXPECT_EQ(shared.space(p).num_features(), legacy.space(p).num_features());
  }
}

}  // namespace
}  // namespace alex::core
