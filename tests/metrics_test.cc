#include "core/metrics.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace alex::core {
namespace {

using feedback::GroundTruth;
using feedback::PackPair;

TEST(MetricsTest, PerfectCandidates) {
  GroundTruth truth;
  truth.Add(1, 1);
  truth.Add(2, 2);
  std::unordered_set<feedback::PairKey> candidates = {PackPair(1, 1),
                                                      PackPair(2, 2)};
  LinkSetMetrics m = ComputeMetrics(candidates, truth);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f_measure, 1.0);
  EXPECT_EQ(m.correct, 2u);
}

TEST(MetricsTest, PartialOverlap) {
  GroundTruth truth;
  truth.Add(1, 1);
  truth.Add(2, 2);
  truth.Add(3, 3);
  truth.Add(4, 4);
  // 2 correct of 4 candidates; 2 of 4 truth covered.
  std::unordered_set<feedback::PairKey> candidates = {
      PackPair(1, 1), PackPair(2, 2), PackPair(9, 9), PackPair(8, 8)};
  LinkSetMetrics m = ComputeMetrics(candidates, truth);
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
  EXPECT_DOUBLE_EQ(m.f_measure, 0.5);
}

TEST(MetricsTest, AsymmetricPrecisionRecall) {
  GroundTruth truth;
  for (uint32_t i = 0; i < 10; ++i) truth.Add(i, i);
  std::unordered_set<feedback::PairKey> candidates = {PackPair(0, 0),
                                                      PackPair(1, 1)};
  LinkSetMetrics m = ComputeMetrics(candidates, truth);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.2);
  EXPECT_NEAR(m.f_measure, 2 * 1.0 * 0.2 / 1.2, 1e-12);
}

TEST(MetricsTest, EmptyCandidates) {
  GroundTruth truth;
  truth.Add(1, 1);
  LinkSetMetrics m = ComputeMetrics({}, truth);
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.f_measure, 0.0);
}

TEST(MetricsTest, EmptyTruth) {
  GroundTruth truth;
  std::unordered_set<feedback::PairKey> candidates = {PackPair(1, 1)};
  LinkSetMetrics m = ComputeMetrics(candidates, truth);
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.f_measure, 0.0);
}

TEST(MetricsTest, ZeroDenominatorsCountUndefinedEvents) {
  // A 0 that means "undefined" is indistinguishable from "all wrong" in a
  // metric series, so each zero-denominator occurrence must emit a counted
  // event — one per undefined metric, two when both sets are empty.
  obs::Counter& undefined =
      obs::MetricsRegistry::Global().counter("metrics.undefined");

  GroundTruth truth;
  truth.Add(1, 1);
  uint64_t before = undefined.Value();
  ComputeMetrics({}, truth);  // Precision undefined.
  EXPECT_EQ(undefined.Value(), before + 1);

  GroundTruth empty_truth;
  std::unordered_set<feedback::PairKey> candidates = {PackPair(1, 1)};
  before = undefined.Value();
  ComputeMetrics(candidates, empty_truth);  // Recall undefined.
  EXPECT_EQ(undefined.Value(), before + 1);

  before = undefined.Value();
  LinkSetMetrics m = ComputeMetrics({}, empty_truth);  // Both undefined.
  EXPECT_EQ(undefined.Value(), before + 2);
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.f_measure, 0.0);

  // Well-defined metrics emit nothing.
  before = undefined.Value();
  ComputeMetrics(candidates, truth);
  EXPECT_EQ(undefined.Value(), before);
}

TEST(MetricsTest, DirectionMatters) {
  GroundTruth truth;
  truth.Add(1, 2);
  std::unordered_set<feedback::PairKey> candidates = {PackPair(2, 1)};
  LinkSetMetrics m = ComputeMetrics(candidates, truth);
  EXPECT_EQ(m.correct, 0u);
}

}  // namespace
}  // namespace alex::core
