#include "simulation/report.h"

#include <algorithm>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace alex::simulation {
namespace {

RunResult MakeTwoEpisodeResult() {
  RunResult result;
  result.scenario_name = "unit_scenario";
  result.converged_episode = 2;
  result.relaxed_episode = 1;
  result.initial_links = 40;
  result.new_links_discovered = 7;
  result.build_seconds_max = 0.25;
  result.total_seconds = 1.5;

  EpisodeRecord first;  // Episode 0: the automatic linker's state.
  first.episode = 0;
  first.metrics.precision = 0.5;
  first.metrics.recall = 0.25;
  first.metrics.f_measure = 1.0 / 3.0;
  first.metrics.candidates = 40;
  result.episodes.push_back(first);

  EpisodeRecord second;
  second.episode = 1;
  second.metrics.precision = 0.875;
  second.metrics.recall = 0.7;
  second.metrics.f_measure = 0.77777;
  second.metrics.candidates = 48;
  second.links_changed = 12;
  second.positive_feedback = 30;
  second.negative_feedback = 10;
  result.episodes.push_back(second);
  return result;
}

TEST(ReportTest, EpisodeSeriesListsEveryEpisode) {
  const RunResult result = MakeTwoEpisodeResult();
  std::ostringstream os;
  PrintEpisodeSeries(result, os);
  const std::string text = os.str();

  EXPECT_NE(text.find("# scenario: unit_scenario"), std::string::npos);
  EXPECT_NE(text.find("episode"), std::string::npos);
  EXPECT_NE(text.find("0.500"), std::string::npos);   // Episode 0 precision.
  EXPECT_NE(text.find("0.875"), std::string::npos);   // Episode 1 precision.
  EXPECT_NE(text.find("25.000"), std::string::npos);  // neg% = 10/40.
  // Header plus one row per episode.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

TEST(ReportTest, EpisodeSeriesEmptyRunSaysSo) {
  RunResult result;
  result.scenario_name = "empty_scenario";
  std::ostringstream os;
  PrintEpisodeSeries(result, os);
  const std::string text = os.str();

  EXPECT_NE(text.find("# scenario: empty_scenario"), std::string::npos);
  EXPECT_NE(text.find("(no episodes)"), std::string::npos);
}

TEST(ReportTest, RunSummaryReportsFinalMetricsAndConvergence) {
  const RunResult result = MakeTwoEpisodeResult();
  std::ostringstream os;
  PrintRunSummary(result, os);
  const std::string text = os.str();

  EXPECT_NE(text.find("scenario=unit_scenario"), std::string::npos);
  EXPECT_NE(text.find("episodes=1"), std::string::npos);  // Excl. episode 0.
  EXPECT_NE(text.find("strict_convergence=2"), std::string::npos);
  EXPECT_NE(text.find("relaxed_convergence=1"), std::string::npos);
  EXPECT_NE(text.find("initial_links=40"), std::string::npos);
  EXPECT_NE(text.find("new_links_discovered=7"), std::string::npos);
  EXPECT_NE(text.find("final_P=0.875"), std::string::npos);
  EXPECT_NE(text.find("final_R=0.700"), std::string::npos);
  EXPECT_NE(text.find("total_s=1.50"), std::string::npos);
}

TEST(ReportTest, RunSummaryEmptyRunDoesNotTouchFinalEpisode) {
  // A hand-built result with no episodes must not reach final_episode()
  // (episodes.back() on an empty vector is undefined behavior).
  RunResult result;
  result.scenario_name = "empty_scenario";
  result.total_seconds = 0.75;
  std::ostringstream os;
  PrintRunSummary(result, os);
  const std::string text = os.str();

  EXPECT_NE(text.find("scenario=empty_scenario"), std::string::npos);
  EXPECT_NE(text.find("episodes=0"), std::string::npos);
  EXPECT_NE(text.find("(no episodes)"), std::string::npos);
  EXPECT_NE(text.find("total_s=0.75"), std::string::npos);
  EXPECT_EQ(text.find("final_F"), std::string::npos);
}

TEST(ReportTest, SeriesAndSummaryLeaveStreamFormattingUntouched) {
  const RunResult result = MakeTwoEpisodeResult();
  std::ostringstream os;
  PrintEpisodeSeries(result, os);
  PrintRunSummary(result, os);
  // Both printers set std::fixed internally and must clear it on exit.
  EXPECT_FALSE(os.flags() & std::ios::fixed);
  os << 0.123456789;
  EXPECT_NE(os.str().find("0.123457"), std::string::npos);
}

}  // namespace
}  // namespace alex::simulation
