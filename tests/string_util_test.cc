#include "common/string_util.h"

#include <gtest/gtest.h>

namespace alex {
namespace {

TEST(StringUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("MiXeD Case 42!"), "mixed case 42!");
  EXPECT_EQ(ToLowerAscii(""), "");
}

TEST(StringUtilTest, TrimAscii) {
  EXPECT_EQ(TrimAscii("  hi  "), "hi");
  EXPECT_EQ(TrimAscii("\t\nhi"), "hi");
  EXPECT_EQ(TrimAscii("hi"), "hi");
  EXPECT_EQ(TrimAscii("   "), "");
  EXPECT_EQ(TrimAscii(""), "");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, SplitWhitespaceDropsEmptyTokens) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(ReplaceAll("no match", "xyz", "!"), "no match");
  EXPECT_EQ(ReplaceAll("abcabc", "bc", "-"), "a-a-");
  EXPECT_EQ(ReplaceAll("x", "", "!"), "x");  // Empty pattern: no-op.
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("http://x", "http://"));
  EXPECT_FALSE(StartsWith("ftp://x", "http://"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("ab", "abc"));
  EXPECT_TRUE(EndsWith("file.nt", ".nt"));
  EXPECT_FALSE(EndsWith("file.ttl", ".nt"));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StringUtilTest, EscapeJsonHostileStrings) {
  EXPECT_EQ(EscapeJson("plain name-42"), "plain name-42");
  EXPECT_EQ(EscapeJson("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(EscapeJson("back\\slash"), "back\\\\slash");
  EXPECT_EQ(EscapeJson("line\nbreak\ttab\rret"),
            "line\\nbreak\\ttab\\rret");
  EXPECT_EQ(EscapeJson(std::string("nul\0byte", 8)), "nul\\u0000byte");
  EXPECT_EQ(EscapeJson("\x01\x1f"), "\\u0001\\u001f");
  EXPECT_EQ(EscapeJson("\b\f"), "\\b\\f");
  // Non-ASCII bytes (UTF-8 continuation etc.) pass through untouched.
  EXPECT_EQ(EscapeJson("café"), "café");
  EXPECT_EQ(EscapeJson(""), "");
}

TEST(StringUtilTest, ParseDoubleStrict) {
  EXPECT_EQ(ParseDouble("0.9"), 0.9);
  EXPECT_EQ(ParseDouble("-1.5e2"), -150.0);
  EXPECT_EQ(ParseDouble("42"), 42.0);
  // Partial consumption, garbage, and non-finite values are all rejected —
  // the failure modes a discarded strtod end pointer let through.
  EXPECT_FALSE(ParseDouble("0.9x").has_value());
  EXPECT_FALSE(ParseDouble("abc").has_value());
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("1e").has_value());
  EXPECT_FALSE(ParseDouble(" 1").has_value());
  EXPECT_FALSE(ParseDouble("1 ").has_value());
  EXPECT_FALSE(ParseDouble("nan").has_value());
  EXPECT_FALSE(ParseDouble("inf").has_value());
  EXPECT_FALSE(ParseDouble("1e999").has_value());
}

TEST(StringUtilTest, ParseUint64Strict) {
  EXPECT_EQ(ParseUint64("0"), 0u);
  EXPECT_EQ(ParseUint64("42"), 42u);
  EXPECT_EQ(ParseUint64("18446744073709551615"), UINT64_MAX);
  EXPECT_FALSE(ParseUint64("").has_value());
  EXPECT_FALSE(ParseUint64("-1").has_value());
  EXPECT_FALSE(ParseUint64("+1").has_value());
  EXPECT_FALSE(ParseUint64("1O").has_value());  // The classic typo.
  EXPECT_FALSE(ParseUint64("1.5").has_value());
  EXPECT_FALSE(ParseUint64(" 7").has_value());
  EXPECT_FALSE(ParseUint64("18446744073709551616").has_value());  // Overflow.
}

TEST(StringUtilTest, WordTokensLowercasesAndSplitsOnNonAlnum) {
  EXPECT_EQ(WordTokens("LeBron James"),
            (std::vector<std::string>{"lebron", "james"}));
  EXPECT_EQ(WordTokens("James, LeBron"),
            (std::vector<std::string>{"james", "lebron"}));
  EXPECT_EQ(WordTokens("a-b_c3"), (std::vector<std::string>{"a", "b", "c3"}));
  EXPECT_TRUE(WordTokens("...").empty());
  EXPECT_TRUE(WordTokens("").empty());
}

}  // namespace
}  // namespace alex
