#include "common/string_util.h"

#include <gtest/gtest.h>

namespace alex {
namespace {

TEST(StringUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("MiXeD Case 42!"), "mixed case 42!");
  EXPECT_EQ(ToLowerAscii(""), "");
}

TEST(StringUtilTest, TrimAscii) {
  EXPECT_EQ(TrimAscii("  hi  "), "hi");
  EXPECT_EQ(TrimAscii("\t\nhi"), "hi");
  EXPECT_EQ(TrimAscii("hi"), "hi");
  EXPECT_EQ(TrimAscii("   "), "");
  EXPECT_EQ(TrimAscii(""), "");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, SplitWhitespaceDropsEmptyTokens) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(ReplaceAll("no match", "xyz", "!"), "no match");
  EXPECT_EQ(ReplaceAll("abcabc", "bc", "-"), "a-a-");
  EXPECT_EQ(ReplaceAll("x", "", "!"), "x");  // Empty pattern: no-op.
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("http://x", "http://"));
  EXPECT_FALSE(StartsWith("ftp://x", "http://"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("ab", "abc"));
  EXPECT_TRUE(EndsWith("file.nt", ".nt"));
  EXPECT_FALSE(EndsWith("file.ttl", ".nt"));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StringUtilTest, WordTokensLowercasesAndSplitsOnNonAlnum) {
  EXPECT_EQ(WordTokens("LeBron James"),
            (std::vector<std::string>{"lebron", "james"}));
  EXPECT_EQ(WordTokens("James, LeBron"),
            (std::vector<std::string>{"james", "lebron"}));
  EXPECT_EQ(WordTokens("a-b_c3"), (std::vector<std::string>{"a", "b", "c3"}));
  EXPECT_TRUE(WordTokens("...").empty());
  EXPECT_TRUE(WordTokens("").empty());
}

}  // namespace
}  // namespace alex
