// Tests for the CachingEndpoint probe cache: hit/replay correctness, the
// never-cache rules (failed probes, truncated streams, oversize results),
// epoch-based invalidation against a mutating LinkIndex, LRU eviction, and
// result equivalence of a cached federation against an uncached one.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "federation/endpoint.h"
#include "federation/fault_injection.h"
#include "federation/federated_engine.h"
#include "federation/probe_cache.h"
#include "obs/metrics.h"
#include "rdf/dataset.h"

namespace alex::fed {
namespace {

using rdf::Term;

/// Inner endpoint that counts probes, so tests can assert a cache hit never
/// reached it.
class CountingEndpoint final : public QueryEndpoint {
 public:
  explicit CountingEndpoint(const QueryEndpoint* inner) : inner_(inner) {}

  const std::string& name() const override { return inner_->name(); }
  bool CanAnswer(const sparql::TriplePatternAst& p) const override {
    return inner_->CanAnswer(p);
  }
  Status Probe(const PatternProbe& probe, const CallOptions& opts,
               const ProbeRowFn& fn) const override {
    ++probes_;
    return inner_->Probe(probe, opts, fn);
  }

  size_t probes() const { return probes_; }

 private:
  const QueryEndpoint* inner_;
  mutable size_t probes_ = 0;
};

class ProbeCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_.AddLiteralTriple("http://r/acme", "http://r/hq",
                           Term::Literal("Belcaster"));
    data_.AddLiteralTriple("http://r/acme", "http://r/label",
                           Term::Literal("Acme Corporation"));
    data_.AddLiteralTriple("http://r/other", "http://r/hq",
                           Term::Literal("Springfield"));
    ep_ = std::make_unique<Endpoint>(&data_);
    counting_ = std::make_unique<CountingEndpoint>(ep_.get());
  }

  /// Collects all rows of a probe as printable strings.
  static std::vector<std::string> Collect(const QueryEndpoint& ep,
                                          const PatternProbe& probe) {
    std::vector<std::string> rows;
    const Status st = ep.Probe(probe, CallOptions(),
                               [&](const Term* s, const Term* p,
                                   const Term* o) {
                                 std::string row;
                                 for (const Term* t : {s, p, o}) {
                                   row += t ? t->ToNTriples() : "_";
                                   row += " ";
                                 }
                                 rows.push_back(std::move(row));
                                 return true;
                               });
    EXPECT_TRUE(st.ok()) << st;
    return rows;
  }

  rdf::Dataset data_{"companies"};
  std::unique_ptr<Endpoint> ep_;
  std::unique_ptr<CountingEndpoint> counting_;
};

TEST_F(ProbeCacheTest, HitReplaysIdenticalRowsWithoutTouchingInner) {
  CachingEndpoint cached(counting_.get());
  const Term subject = Term::Iri("http://r/acme");
  PatternProbe probe;
  probe.subject = &subject;

  const auto first = Collect(cached, probe);
  EXPECT_EQ(first.size(), 2u);
  EXPECT_EQ(counting_->probes(), 1u);
  const auto second = Collect(cached, probe);
  EXPECT_EQ(second, first);               // Byte-identical replay.
  EXPECT_EQ(counting_->probes(), 1u);     // Inner endpoint never consulted.
  EXPECT_EQ(cached.hits(), 1u);
  EXPECT_EQ(cached.misses(), 1u);
}

TEST_F(ProbeCacheTest, BoundSlotsReplayAsNullLikeTheRealEndpoint) {
  CachingEndpoint cached(counting_.get());
  const Term subject = Term::Iri("http://r/acme");
  const Term pred = Term::Iri("http://r/hq");
  PatternProbe probe;
  probe.subject = &subject;
  probe.predicate = &pred;
  for (int round = 0; round < 2; ++round) {
    size_t rows = 0;
    const Status st = cached.Probe(
        probe, CallOptions(),
        [&](const Term* s, const Term* p, const Term* o) -> bool {
          EXPECT_EQ(s, nullptr);  // Bound slots stream as null.
          EXPECT_EQ(p, nullptr);
          EXPECT_TRUE(o != nullptr && *o == Term::Literal("Belcaster"));
          ++rows;
          return true;
        });
    ASSERT_TRUE(st.ok()) << st;
    EXPECT_EQ(rows, 1u) << "round " << round;
  }
  EXPECT_EQ(cached.hits(), 1u);
}

TEST_F(ProbeCacheTest, AllWildcardProbesBypassTheCache) {
  CachingEndpoint cached(counting_.get());
  const PatternProbe probe;  // Full scan.
  EXPECT_EQ(Collect(cached, probe).size(), 3u);
  EXPECT_EQ(Collect(cached, probe).size(), 3u);
  EXPECT_EQ(counting_->probes(), 2u);  // Forwarded both times.
  EXPECT_EQ(cached.hits(), 0u);
  EXPECT_EQ(cached.misses(), 0u);
  EXPECT_EQ(cached.size(), 0u);
}

TEST_F(ProbeCacheTest, TruncatedStreamsAreNeverCached) {
  CachingEndpoint cached(counting_.get());
  const Term subject = Term::Iri("http://r/acme");
  PatternProbe probe;
  probe.subject = &subject;
  // Consumer stops after the first row: the entry would be incomplete.
  const Status st = cached.Probe(
      probe, CallOptions(),
      [](const Term*, const Term*, const Term*) { return false; });
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(cached.size(), 0u);
  // The next full consumption must see every row, straight from the inner.
  EXPECT_EQ(Collect(cached, probe).size(), 2u);
  EXPECT_EQ(counting_->probes(), 2u);
}

TEST_F(ProbeCacheTest, FailedProbesAreNeverCached) {
  SimClock clock;
  FaultInjectedEndpoint faulty(ep_.get(), FaultProfile::DownFor(1),
                               /*seed=*/7, &clock);
  CachingEndpoint cached(&faulty);
  const Term subject = Term::Iri("http://r/acme");
  PatternProbe probe;
  probe.subject = &subject;

  const Status failed = cached.Probe(
      probe, CallOptions(),
      [](const Term*, const Term*, const Term*) { return true; });
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(cached.size(), 0u);  // The failure was not memoized.

  // The endpoint has recovered; the retry reaches it and is cached.
  EXPECT_EQ(Collect(cached, probe).size(), 2u);
  EXPECT_EQ(cached.size(), 1u);
  EXPECT_EQ(Collect(cached, probe).size(), 2u);
  EXPECT_EQ(cached.hits(), 1u);
}

TEST_F(ProbeCacheTest, OversizeResultsAreNotCached) {
  ProbeCacheConfig config;
  config.max_rows_per_entry = 1;
  CachingEndpoint cached(counting_.get(), config);
  const Term subject = Term::Iri("http://r/acme");
  PatternProbe probe;
  probe.subject = &subject;
  EXPECT_EQ(Collect(cached, probe).size(), 2u);  // Streams fully regardless.
  EXPECT_EQ(cached.size(), 0u);                  // But is not retained.
  EXPECT_EQ(Collect(cached, probe).size(), 2u);
  EXPECT_EQ(counting_->probes(), 2u);
}

TEST_F(ProbeCacheTest, LruEvictsOldestEntry) {
  ProbeCacheConfig config;
  config.max_entries = 2;
  CachingEndpoint cached(counting_.get(), config);
  const Term s1 = Term::Iri("http://r/acme");
  const Term s2 = Term::Iri("http://r/other");
  const Term p1 = Term::Iri("http://r/hq");
  PatternProbe a, b, c;
  a.subject = &s1;
  b.subject = &s2;
  c.subject = &s1;
  c.predicate = &p1;
  Collect(cached, a);
  Collect(cached, b);
  Collect(cached, c);  // Evicts `a`, the least recently used.
  EXPECT_EQ(cached.size(), 2u);
  EXPECT_EQ(cached.evictions(), 1u);
  Collect(cached, a);  // Miss again.
  EXPECT_EQ(cached.misses(), 4u);
  EXPECT_EQ(cached.hits(), 0u);
}

TEST_F(ProbeCacheTest, LinkIndexEpochInvalidatesTheWholeCache) {
  LinkIndex links;
  links.Add("http://l/a", "http://r/acme");
  CachingEndpoint cached(counting_.get(), ProbeCacheConfig(),
                         [&links] { return links.epoch(); });
  const Term subject = Term::Iri("http://r/acme");
  PatternProbe probe;
  probe.subject = &subject;
  Collect(cached, probe);
  Collect(cached, probe);
  EXPECT_EQ(cached.hits(), 1u);
  EXPECT_EQ(cached.size(), 1u);

  // Any link mutation bumps the epoch; the very next probe sees a flushed
  // cache and consults the real endpoint again.
  links.Add("http://l/b", "http://r/other");
  Collect(cached, probe);
  EXPECT_EQ(cached.hits(), 1u);
  EXPECT_EQ(counting_->probes(), 2u);

  links.Remove("http://l/b", "http://r/other");
  Collect(cached, probe);
  EXPECT_EQ(counting_->probes(), 3u);
}

TEST_F(ProbeCacheTest, MetricsCountHitsAndMisses) {
  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::Global().Snapshot();
  CachingEndpoint cached(counting_.get());
  const Term subject = Term::Iri("http://r/acme");
  PatternProbe probe;
  probe.subject = &subject;
  Collect(cached, probe);
  Collect(cached, probe);
  Collect(cached, probe);
  const obs::MetricsSnapshot delta =
      obs::MetricsRegistry::Global().Snapshot().DeltaSince(before);
  EXPECT_EQ(delta.counters.at("fed.probe_cache_hits"), 2u);
  EXPECT_EQ(delta.counters.at("fed.probe_cache_misses"), 1u);
}

TEST_F(ProbeCacheTest, CachedFederationMatchesUncachedColdAndWarm) {
  rdf::Dataset left("hr");
  left.AddIriTriple("http://l/alice", "http://l/worksFor", "http://l/acme");
  left.AddLiteralTriple("http://l/acme", "http://l/name",
                        Term::Literal("Acme"));
  LinkIndex links;
  links.Add("http://l/acme", "http://r/acme");
  Endpoint left_ep(&left);
  FederatedEngine plain(&left_ep, ep_.get(), &links);

  CachingEndpoint cached_left(&left_ep, ProbeCacheConfig(),
                              [&links] { return links.epoch(); });
  CachingEndpoint cached_right(ep_.get(), ProbeCacheConfig(),
                               [&links] { return links.epoch(); });
  FederatedEngine caching(&cached_left, &cached_right, &links);

  const std::string query =
      "SELECT ?p ?o WHERE { <http://l/acme> ?p ?o . }";
  auto reference = plain.ExecuteText(query);
  ASSERT_TRUE(reference.ok()) << reference.status();
  for (int round = 0; round < 3; ++round) {  // Cold, then warm twice.
    auto r = caching.ExecuteText(query);
    ASSERT_TRUE(r.ok()) << r.status();
    ASSERT_EQ(r->NumRows(), reference->NumRows()) << "round " << round;
    for (size_t i = 0; i < r->rows.size(); ++i) {
      EXPECT_EQ(r->rows[i].values, reference->rows[i].values);
    }
  }
  EXPECT_GT(cached_right.hits(), 0u);  // The warm rounds actually hit.

  // A link added after the warm rounds is visible immediately: epoch
  // invalidation beats the stale cache.
  data_.AddLiteralTriple("http://r/acme2", "http://r/hq",
                         Term::Literal("Miami"));
  links.Add("http://l/acme", "http://r/acme2");
  auto widened = caching.ExecuteText(query);
  ASSERT_TRUE(widened.ok()) << widened.status();
  EXPECT_GT(widened->NumRows(), reference->NumRows());
}

}  // namespace
}  // namespace alex::fed
