#include "federation/endpoint.h"

#include <gtest/gtest.h>

#include "sparql/parser.h"

namespace alex::fed {
namespace {

using rdf::Term;

class EndpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_.AddLiteralTriple("http://x/e", "http://x/name", Term::Literal("E"));
    ds_.AddLiteralTriple("http://x/e", "http://x/age",
                         Term::TypedLiteral("7", std::string(rdf::kXsdInteger)));
    endpoint_ = std::make_unique<Endpoint>(&ds_);
  }
  rdf::Dataset ds_{"src"};
  std::unique_ptr<Endpoint> endpoint_;
};

TEST_F(EndpointTest, NameComesFromDataset) {
  EXPECT_EQ(endpoint_->name(), "src");
}

TEST_F(EndpointTest, HasPredicateProbe) {
  EXPECT_TRUE(endpoint_->HasPredicate("http://x/name"));
  EXPECT_FALSE(endpoint_->HasPredicate("http://x/missing"));
}

TEST_F(EndpointTest, CanAnswerSourceSelection) {
  auto q = sparql::ParseQuery(
      "SELECT ?s WHERE { ?s <http://x/name> ?n . ?s <http://y/other> ?o . "
      "?s ?p ?v . }");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(endpoint_->CanAnswer(q->where[0]));   // Known predicate.
  EXPECT_FALSE(endpoint_->CanAnswer(q->where[1]));  // Foreign predicate.
  EXPECT_TRUE(endpoint_->CanAnswer(q->where[2]));   // Variable predicate.
}

TEST_F(EndpointTest, SelectDelegatesToEvaluator) {
  auto q = sparql::ParseQuery("SELECT ?n WHERE { ?s <http://x/name> ?n . }");
  ASSERT_TRUE(q.ok());
  auto r = endpoint_->Select(*q);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->NumRows(), 1u);
  EXPECT_EQ(r->rows[0][0], Term::Literal("E"));
}

}  // namespace
}  // namespace alex::fed
