#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace alex {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // Must not hang.
  SUCCEED();
}

TEST(ThreadPoolTest, MultipleWaitCycles) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 20);
  }
}

TEST(ThreadPoolTest, TasksCanSubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&pool, &counter] {
    counter.fetch_add(1);
    pool.Submit([&counter] { counter.fetch_add(1); });
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  ParallelFor(&pool, hits.size(),
              [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIterations) {
  ThreadPool pool(2);
  ParallelFor(&pool, 0, [](size_t) { FAIL() << "must not be called"; });
  SUCCEED();
}

TEST(ThreadPoolTest, ThrowingTaskRethrownFromWait) {
  // A task exception used to escape WorkerLoop and std::terminate the whole
  // process (with in_flight_ left dangling). It must instead surface from
  // Wait() on the submitting thread.
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Submit([] { throw std::runtime_error("task boom"); });
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  try {
    pool.Wait();
    FAIL() << "Wait() must rethrow the task exception";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "task boom");
  }
  // Every non-throwing task still ran: the worker decremented in_flight_ for
  // the throwing task too, so Wait() was able to drain.
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, FirstOfManyExceptionsWins) {
  ThreadPool pool(4);
  std::atomic<int> throws{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&throws] {
      throws.fetch_add(1);
      throw std::runtime_error("boom");
    });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  EXPECT_EQ(throws.load(), 8);  // All tasks ran despite the failures.
}

TEST(ThreadPoolTest, PoolUsableAfterTaskException) {
  // The error slot is cleared by the Wait() that reports it; the next cycle
  // starts clean.
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  std::atomic<int> counter{0};
  for (int i = 0; i < 25; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();  // Must neither hang nor rethrow the stale exception.
  EXPECT_EQ(counter.load(), 25);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }  // Destructor must join without deadlock.
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace alex
