#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/topology.h"

namespace alex {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // Must not hang.
  SUCCEED();
}

TEST(ThreadPoolTest, MultipleWaitCycles) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 20);
  }
}

TEST(ThreadPoolTest, TasksCanSubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&pool, &counter] {
    counter.fetch_add(1);
    pool.Submit([&counter] { counter.fetch_add(1); });
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  ParallelFor(&pool, hits.size(),
              [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIterations) {
  ThreadPool pool(2);
  ParallelFor(&pool, 0, [](size_t) { FAIL() << "must not be called"; });
  SUCCEED();
}

TEST(ThreadPoolTest, ThrowingTaskRethrownFromWait) {
  // A task exception used to escape WorkerLoop and std::terminate the whole
  // process (with in_flight_ left dangling). It must instead surface from
  // Wait() on the submitting thread.
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Submit([] { throw std::runtime_error("task boom"); });
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  try {
    pool.Wait();
    FAIL() << "Wait() must rethrow the task exception";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "task boom");
  }
  // Every non-throwing task still ran: the worker decremented in_flight_ for
  // the throwing task too, so Wait() was able to drain.
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, FirstOfManyExceptionsWins) {
  ThreadPool pool(4);
  std::atomic<int> throws{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&throws] {
      throws.fetch_add(1);
      throw std::runtime_error("boom");
    });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  EXPECT_EQ(throws.load(), 8);  // All tasks ran despite the failures.
}

TEST(ThreadPoolTest, PoolUsableAfterTaskException) {
  // The error slot is cleared by the Wait() that reports it; the next cycle
  // starts clean.
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  std::atomic<int> counter{0};
  for (int i = 0; i < 25; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();  // Must neither hang nor rethrow the stale exception.
  EXPECT_EQ(counter.load(), 25);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }  // Destructor must join without deadlock.
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, AffinityHintsRunEveryTask) {
  // Hints are locality advice, never placement filters: every task must run
  // exactly once whatever the hint, including hints far beyond num_threads.
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(200);
  for (size_t i = 0; i < hits.size(); ++i) {
    pool.Submit([&hits, i] { hits[i].fetch_add(1); }, /*affinity_hint=*/i * 7);
  }
  pool.Wait();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SubmitFromWorkerRecursionStress) {
  // Deep fan-out submitted from inside workers: each task spawns two more
  // until the budget is spent. Exercises worker-local enqueue plus stealing
  // under load; Wait() must count tasks submitted by tasks.
  ThreadPool pool(4);
  std::atomic<int> budget{2047};  // Full binary tree of depth 10.
  std::atomic<int> ran{0};
  std::function<void()> task = [&] {
    ran.fetch_add(1);
    for (int child = 0; child < 2; ++child) {
      if (budget.fetch_sub(1) > 0) pool.Submit(task);
    }
  };
  budget.fetch_sub(1);
  pool.Submit(task);
  pool.Wait();
  EXPECT_EQ(ran.load(), 2047);
}

TEST(ThreadPoolTest, StealingStressManyProducers) {
  // TSan target: external submitters round-robin across every queue while
  // workers pop their own fronts and steal each other's backs. All counters
  // must land exactly, with no data-race reports under -DALEX_SANITIZE.
  ThreadPool pool(4);
  std::atomic<int64_t> sum{0};
  constexpr int kTasks = 20000;
  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&pool, &sum, p] {
      for (int i = p; i < kTasks; i += 3) {
        pool.Submit([&sum, i] { sum.fetch_add(i); },
                    /*affinity_hint=*/static_cast<size_t>(i));
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.Wait();
  EXPECT_EQ(sum.load(), int64_t{kTasks} * (kTasks - 1) / 2);
}

TEST(ThreadPoolTest, PinningDegradesGracefullyOnBogusTopology) {
  // A topology whose CPU ids cannot exist forces every pin attempt to fail.
  // The pool must still run everything; pinned_workers() reports the
  // degradation instead of the constructor aborting.
  const exec::CpuTopology bogus = exec::CpuTopology::ForTesting(
      {{1 << 20, 0}, {(1 << 20) + 1, 0}}, /*affinity_supported=*/true);
  ThreadPool::Options options;
  options.pin_threads = true;
  options.topology = &bogus;
  ThreadPool pool(2, options);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
  EXPECT_EQ(pool.pinned_workers(), 0u);
}

TEST(ThreadPoolTest, PinningSkippedWhenAffinityUnsupported) {
  const exec::CpuTopology none =
      exec::CpuTopology::ForTesting({{0, 0}}, /*affinity_supported=*/false);
  ThreadPool::Options options;
  options.pin_threads = true;
  options.topology = &none;
  ThreadPool pool(2, options);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  EXPECT_EQ(pool.pinned_workers(), 0u);
}

TEST(ThreadPoolTest, PinnedPoolRunsOnRealTopology) {
  // On the live machine: pinning either works (pinned_workers > 0) or the
  // environment denies it (== 0); both are valid, crashing is not.
  ThreadPool::Options options;
  options.pin_threads = true;
  ThreadPool pool(2, options);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
  EXPECT_LE(pool.pinned_workers(), pool.num_threads());
}

TEST(ThreadPoolTest, ParallelForExplicitGrainCoversAllIndices) {
  ThreadPool pool(4);
  for (size_t grain : {size_t{1}, size_t{7}, size_t{100}, size_t{10000}}) {
    std::vector<std::atomic<int>> hits(1013);
    ParallelForOptions options;
    options.grain = grain;
    ParallelFor(
        &pool, hits.size(), [&hits](size_t i) { hits[i].fetch_add(1); },
        options);
    for (size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "grain " << grain << " index " << i;
    }
  }
}

TEST(ThreadPoolTest, ParallelForThrowAbandonsOwnChunkOnly) {
  // Chunked exception semantics: index 0 throws, killing the remainder of
  // its chunk; every index in every OTHER chunk still runs.
  ThreadPool pool(2);
  constexpr size_t kN = 40;
  constexpr size_t kGrain = 10;
  std::vector<std::atomic<int>> hits(kN);
  ParallelForOptions options;
  options.grain = kGrain;
  try {
    ParallelFor(
        &pool, kN,
        [&hits](size_t i) {
          if (i == 0) throw std::runtime_error("chunk boom");
          hits[i].fetch_add(1);
        },
        options);
    FAIL() << "ParallelFor must rethrow the chunk exception";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "chunk boom");
  }
  for (size_t i = 1; i < kGrain; ++i) {
    EXPECT_EQ(hits[i].load(), 0) << "index " << i
                                 << " ran after its chunk threw";
  }
  for (size_t i = kGrain; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i << " in an innocent chunk";
  }
}

}  // namespace
}  // namespace alex
