#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace alex {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // Must not hang.
  SUCCEED();
}

TEST(ThreadPoolTest, MultipleWaitCycles) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 20);
  }
}

TEST(ThreadPoolTest, TasksCanSubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&pool, &counter] {
    counter.fetch_add(1);
    pool.Submit([&counter] { counter.fetch_add(1); });
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  ParallelFor(&pool, hits.size(),
              [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIterations) {
  ThreadPool pool(2);
  ParallelFor(&pool, 0, [](size_t) { FAIL() << "must not be called"; });
  SUCCEED();
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }  // Destructor must join without deadlock.
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace alex
