// Batch linking pipeline a downstream user would run on their own data:
//
//   1. read two RDF knowledge bases from N-Triples files,
//   2. produce initial candidate links with the PARIS linker,
//   3. refine them with ALEX driven by feedback (here: a ground-truth file;
//      in production: user feedback on federated query answers),
//   4. write the final owl:sameAs links as N-Triples.
//
// Usage:
//   linking_pipeline <left.nt> <right.nt> [truth.nt] [out.nt]
//
// Without arguments the example generates a demo pair, writes it to
// /tmp/alex_demo_{left,right,truth}.nt, and runs on those files — so it
// also demonstrates the RDF I/O round trip.

#include <fstream>
#include <iostream>

#include "core/metrics.h"
#include "core/partitioned.h"
#include "datagen/generator.h"
#include "feedback/oracle.h"
#include "paris/paris.h"
#include "rdf/ntriples.h"
#include "common/logging.h"

namespace {

using namespace alex;

bool WriteDatasetFile(const rdf::Dataset& ds, const std::string& path) {
  std::ofstream out(path);
  return out && rdf::WriteNTriples(ds.store(), ds.dict(), out).ok();
}

bool LoadDataset(const std::string& path, rdf::Dataset* ds) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return false;
  }
  Status s = rdf::ReadNTriples(in, &ds->dict(), &ds->store());
  if (!s.ok()) {
    std::cerr << path << ": " << s << "\n";
    return false;
  }
  ds->BuildEntityIndex();
  return true;
}

/// Reads a ground-truth file of `<left> owl:sameAs <right> .` triples.
bool LoadTruth(const std::string& path, const rdf::Dataset& left,
               const rdf::Dataset& right, feedback::GroundTruth* truth) {
  rdf::Dataset links("truth");
  if (!LoadDataset(path, &links)) return false;
  auto same_as = links.dict().Lookup(rdf::Term::Iri(std::string(rdf::kOwlSameAs)));
  if (!same_as) return true;  // No links.
  links.store().ForEachMatch(
      rdf::TriplePattern{rdf::kInvalidTermId, *same_as, rdf::kInvalidTermId},
      [&](const rdf::Triple& t) {
        auto l = left.FindEntityByIri(links.dict().term(t.subject).value);
        auto r = right.FindEntityByIri(links.dict().term(t.object).value);
        if (l && r) truth->Add(*l, *r);
        return true;
      });
  return true;
}

void MakeDemoFiles(std::string* left_path, std::string* right_path,
                   std::string* truth_path) {
  datagen::ScenarioConfig config;
  config.name = "demo";
  config.seed = 2024;
  config.num_shared = 150;
  config.num_left_only = 100;
  config.num_right_only = 50;
  config.domains = {"person", "organization"};
  config.value_noise = 0.5;
  config.ambiguity = 0.3;
  datagen::GeneratedPair pair = datagen::GenerateScenario(config);

  *left_path = "/tmp/alex_demo_left.nt";
  *right_path = "/tmp/alex_demo_right.nt";
  *truth_path = "/tmp/alex_demo_truth.nt";
  WriteDatasetFile(pair.left, *left_path);
  WriteDatasetFile(pair.right, *right_path);
  std::ofstream truth(*truth_path);
  for (feedback::PairKey key : pair.truth.pairs()) {
    truth << "<" << pair.left.entity_iri(feedback::PairLeft(key)) << "> <"
          << rdf::kOwlSameAs << "> <"
          << pair.right.entity_iri(feedback::PairRight(key)) << "> .\n";
  }
  std::cout << "Demo data written to /tmp/alex_demo_{left,right,truth}.nt\n";
}

}  // namespace

int main(int argc, char** argv) {
  alex::InitLoggingFromEnv();
  std::string left_path, right_path, truth_path, out_path = "/tmp/alex_links.nt";
  if (argc >= 3) {
    left_path = argv[1];
    right_path = argv[2];
    if (argc >= 4) truth_path = argv[3];
    if (argc >= 5) out_path = argv[4];
  } else {
    MakeDemoFiles(&left_path, &right_path, &truth_path);
  }

  rdf::Dataset left("left");
  rdf::Dataset right("right");
  if (!LoadDataset(left_path, &left) || !LoadDataset(right_path, &right)) {
    return 1;
  }
  std::cout << "Loaded " << left.num_entities() << " + "
            << right.num_entities() << " entities ("
            << left.num_triples() + right.num_triples() << " triples)\n";

  // 1. Initial candidate links.
  paris::ParisLinker linker(&left, &right);
  const std::vector<paris::ScoredLink> initial = linker.Run();
  std::cout << "PARIS produced " << initial.size() << " candidate links\n";

  // 2. ALEX refinement (needs feedback — here simulated from ground truth).
  feedback::GroundTruth truth;
  if (!truth_path.empty() && !LoadTruth(truth_path, left, right, &truth)) {
    return 1;
  }
  core::AlexConfig config;
  config.episode_size = 200;
  config.num_partitions = 8;
  core::PartitionedAlex alex(&left, &right, config);
  alex.Build();
  alex.InitializeCandidates(initial);

  if (!truth.empty()) {
    feedback::Oracle oracle(&truth, 0.0, 1);
    std::unordered_set<feedback::PairKey> previous = alex.Candidates();
    for (size_t episode = 1; episode <= config.max_episodes; ++episode) {
      for (size_t i = 0; i < config.episode_size; ++i) {
        auto item = oracle.SampleAndJudge(alex.CandidateVector());
        if (!item) break;
        alex.ProcessFeedback(*item);
      }
      alex.EndEpisode();
      const auto current = alex.Candidates();
      const auto metrics = core::ComputeMetrics(current, truth);
      std::cout << "episode " << episode << ": P=" << metrics.precision
                << " R=" << metrics.recall << " F=" << metrics.f_measure
                << " links=" << current.size() << "\n";
      if (current == previous) {
        std::cout << "converged\n";
        break;
      }
      previous = current;
    }
  } else {
    std::cout << "(no ground truth given: skipping the feedback loop; "
                 "PARIS links pass through)\n";
  }

  // 3. Export owl:sameAs links.
  std::ofstream out(out_path);
  size_t exported = 0;
  for (feedback::PairKey key : alex.Candidates()) {
    out << "<" << left.entity_iri(feedback::PairLeft(key)) << "> <"
        << rdf::kOwlSameAs << "> <"
        << right.entity_iri(feedback::PairRight(key)) << "> .\n";
    ++exported;
  }
  std::cout << "Wrote " << exported << " owl:sameAs links to " << out_path
            << "\n";
  return 0;
}
