// Quickstart: generate a small knowledge-base pair, produce initial links
// with the PARIS linker, and let ALEX improve them with simulated feedback.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>
#include <algorithm>
#include <map>
#include <vector>

#include "core/feature.h"
#include "datagen/scenarios.h"
#include "simulation/report.h"
#include "simulation/simulation.h"
#include "common/logging.h"

int main() {
  using namespace alex;
  InitLoggingFromEnv();

  simulation::SimulationConfig config;
  // The NBA players scenario: 93 ground-truth links between a DBpedia
  // extract and NYTimes, the paper's interactive single-user setting.
  config.scenario = datagen::DbpediaNbaNytimes();
  config.alex.episode_size = 10;  // Interactive: 10 feedback items/episode.
  config.alex.num_partitions = 4;
  config.alex.max_episodes = 50;

  std::cout << "Generating scenario '" << config.scenario.name << "' ...\n";
  simulation::Simulation sim(config);

  // Capture what the policy has learned about each feature (the learned
  // ranking of "which attribute pair is worth exploring around").
  std::map<std::string, std::pair<double, int>> learned;
  sim.set_observer([&](size_t, const core::PartitionedAlex& alex) {
    learned.clear();
    for (size_t p = 0; p < alex.num_partitions(); ++p) {
      for (const auto& [feature, q] :
           alex.engine(p).policy().GlobalActionValues()) {
        auto& slot = learned[core::FeatureName(sim.data().left,
                                               sim.data().right, feature)];
        slot.first += q;
        slot.second += 1;
      }
    }
  });

  const simulation::RunResult result = sim.Run();

  std::cout << "\nDatasets: " << sim.data().left.name() << " ("
            << sim.data().left.num_entities() << " entities, "
            << sim.data().left.num_triples() << " triples) vs "
            << sim.data().right.name() << " ("
            << sim.data().right.num_entities() << " entities, "
            << sim.data().right.num_triples() << " triples)\n";
  std::cout << "Ground truth links: " << sim.data().truth.size() << "\n\n";

  simulation::PrintEpisodeSeries(result, std::cout);
  std::cout << "\n";
  simulation::PrintRunSummary(result, std::cout);

  std::cout << "\nLearned feature values (avg return of exploring around "
               "each attribute pair):\n";
  std::vector<std::pair<double, std::string>> ranked;
  for (const auto& [name, sum_count] : learned) {
    ranked.emplace_back(sum_count.first / sum_count.second, name);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  for (const auto& [q, name] : ranked) {
    std::cout << "  " << (q >= 0 ? "+" : "") << q << "  " << name << "\n";
  }
  return 0;
}
