// End-to-end walkthrough of the paper's motivating story (Section 1):
// "Find all New York Times articles about the NBA's MVP of 2013."
//
// Two knowledge bases are linked by owl:sameAs links; a federated SPARQL
// query joins them; the user approves or rejects answers; the feedback —
// attributed to links through answer provenance — repairs the link set.
//
// Run: ./build/examples/federated_query

#include <iostream>

#include "federation/federated_engine.h"
#include "rdf/dataset.h"
#include "common/logging.h"

int main() {
  using namespace alex;
  InitLoggingFromEnv();
  using rdf::Term;

  // --- A DBpedia-like knowledge base. ---
  rdf::Dataset dbpedia("dbpedia");
  dbpedia.AddLiteralTriple("http://dbpedia.org/LeBron_James",
                           "http://dbpedia.org/ontology/award",
                           Term::Literal("NBA MVP 2013"));
  dbpedia.AddLiteralTriple("http://dbpedia.org/LeBron_James",
                           "http://dbpedia.org/ontology/name",
                           Term::Literal("LeBron James"));
  dbpedia.AddLiteralTriple("http://dbpedia.org/Kevin_Durant",
                           "http://dbpedia.org/ontology/award",
                           Term::Literal("NBA MVP 2014"));
  dbpedia.AddLiteralTriple("http://dbpedia.org/Kevin_Durant",
                           "http://dbpedia.org/ontology/name",
                           Term::Literal("Kevin Durant"));

  // --- A New York Times-like knowledge base. ---
  rdf::Dataset nytimes("nytimes");
  nytimes.AddIriTriple("http://nyt.com/article/1", "http://nyt.com/about",
                       "http://nyt.com/person/lebron-james");
  nytimes.AddLiteralTriple("http://nyt.com/article/1",
                           "http://nyt.com/headline",
                           Term::Literal("King James seals fourth MVP"));
  nytimes.AddIriTriple("http://nyt.com/article/2", "http://nyt.com/about",
                       "http://nyt.com/person/lebron-james");
  nytimes.AddLiteralTriple("http://nyt.com/article/2",
                           "http://nyt.com/headline",
                           Term::Literal("Heat repeat as champions"));
  nytimes.AddIriTriple("http://nyt.com/article/3", "http://nyt.com/about",
                       "http://nyt.com/person/kevin-durant");
  nytimes.AddLiteralTriple("http://nyt.com/article/3",
                           "http://nyt.com/headline",
                           Term::Literal("Durant leads Thunder"));

  // --- Candidate links from an (imperfect) automatic linker. ---
  fed::LinkIndex links;
  links.Add("http://dbpedia.org/LeBron_James",
            "http://nyt.com/person/lebron-james");
  // An incorrect candidate link the linker also produced:
  links.Add("http://dbpedia.org/LeBron_James",
            "http://nyt.com/person/kevin-durant");

  fed::Endpoint dbp(&dbpedia);
  fed::Endpoint nyt(&nytimes);
  fed::FederatedEngine engine(&dbp, &nyt, &links);

  const std::string query =
      "SELECT ?headline WHERE { "
      "  ?player <http://dbpedia.org/ontology/award> \"NBA MVP 2013\" . "
      "  ?article <http://nyt.com/about> ?player . "
      "  ?article <http://nyt.com/headline> ?headline . }";

  std::cout << "Query: all NYT articles about the NBA MVP of 2013\n\n";
  auto result = engine.ExecuteText(query);
  if (!result.ok()) {
    std::cerr << "query failed: " << result.status() << "\n";
    return 1;
  }
  std::cout << "Answers before feedback (" << result->NumRows() << "):\n";
  for (const fed::ProvenancedRow& row : result->rows) {
    std::cout << "  " << row.values[0].value << "   [via ";
    for (const fed::SameAsLink& link : row.links_used) {
      std::cout << link.left_iri << " = " << link.right_iri << " ";
    }
    std::cout << "]\n";
  }

  // The user recognizes "Durant leads Thunder" as a wrong answer and
  // rejects it. The row's provenance names the link to blame.
  std::cout << "\nUser rejects the Durant article. Removing the link its"
            << " provenance names...\n";
  for (const fed::ProvenancedRow& row : result->rows) {
    if (row.values[0].value == "Durant leads Thunder") {
      for (const fed::SameAsLink& link : row.links_used) {
        links.Remove(link.left_iri, link.right_iri);
        std::cout << "  removed " << link.left_iri << " = " << link.right_iri
                  << "\n";
      }
    }
  }

  auto repaired = engine.ExecuteText(query);
  std::cout << "\nAnswers after feedback (" << repaired->NumRows() << "):\n";
  for (const fed::ProvenancedRow& row : repaired->rows) {
    std::cout << "  " << row.values[0].value << "\n";
  }
  return 0;
}
