// Command-line SPARQL runner over local RDF files — the "query side" of the
// library as a standalone tool.
//
// Usage:
//   sparql_shell <data.(nt|ttl)> [--json|--tsv] [query...]
//   sparql_shell --federate <left.nt> <right.nt> <links.nt> [query...]
//
// With no query argument, queries are read from stdin (one per line; blank
// line or EOF ends the session). The optional links file holds
// `<left> owl:sameAs <right> .` triples for federated mode.
//
// Examples:
//   ./build/examples/linking_pipeline          # writes /tmp/alex_demo_*.nt
//   ./build/examples/sparql_shell /tmp/alex_demo_left.nt \
//       'SELECT ?s ?n WHERE { ?s <http://dbpedia.example.org/ontology/name> ?n . } LIMIT 5'
//   ./build/examples/sparql_shell --federate /tmp/alex_demo_left.nt \
//       /tmp/alex_demo_right.nt /tmp/alex_links.nt \
//       'SELECT * WHERE { ?s ?p ?o . } LIMIT 5'

#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "federation/federated_engine.h"
#include "rdf/ntriples.h"
#include "rdf/turtle.h"
#include "sparql/parser.h"
#include "sparql/results_io.h"
#include "common/logging.h"

namespace {

using namespace alex;

enum class OutputMode { kTable, kJson, kTsv };

bool LoadFile(const std::string& path, rdf::Dataset* ds) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return false;
  }
  Status s = EndsWith(path, ".ttl")
                 ? rdf::ReadTurtle(in, &ds->dict(), &ds->store())
                 : rdf::ReadNTriples(in, &ds->dict(), &ds->store());
  if (!s.ok()) {
    std::cerr << path << ": " << s << "\n";
    return false;
  }
  ds->BuildEntityIndex();
  std::cerr << "loaded " << path << ": " << ds->num_triples() << " triples, "
            << ds->num_entities() << " entities\n";
  return true;
}

void PrintTable(const sparql::QueryResult& r) {
  for (const std::string& v : r.variables) std::cout << "?" << v << "\t";
  std::cout << "\n";
  for (const auto& row : r.rows) {
    for (const rdf::Term& t : row) std::cout << t.ToNTriples() << "\t";
    std::cout << "\n";
  }
  std::cout << "(" << r.NumRows() << " rows)\n";
}

void PrintFederated(const fed::FederatedResult& r) {
  for (const std::string& v : r.variables) std::cout << "?" << v << "\t";
  std::cout << "\n";
  for (const auto& row : r.rows) {
    for (const rdf::Term& t : row.values) std::cout << t.ToNTriples() << "\t";
    if (!row.links_used.empty()) {
      std::cout << "  # via";
      for (const auto& link : row.links_used) {
        std::cout << " " << link.left_iri << "=" << link.right_iri;
      }
    }
    std::cout << "\n";
  }
  std::cout << "(" << r.NumRows() << " rows)\n";
}

int RunLocal(const rdf::Dataset& ds, const std::string& query,
             OutputMode mode) {
  auto parsed = sparql::ParseQuery(query);
  if (!parsed.ok()) {
    std::cerr << parsed.status() << "\n";
    return 1;
  }
  if (parsed->is_ask) {
    auto verdict = sparql::Ask(*parsed, ds);
    if (!verdict.ok()) {
      std::cerr << verdict.status() << "\n";
      return 1;
    }
    if (mode == OutputMode::kJson) {
      sparql::WriteAskJson(*verdict, std::cout);
    } else {
      std::cout << (*verdict ? "yes" : "no") << "\n";
    }
    return 0;
  }
  auto result = sparql::Evaluate(*parsed, ds);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  switch (mode) {
    case OutputMode::kJson:
      sparql::WriteResultsJson(*result, std::cout);
      break;
    case OutputMode::kTsv:
      sparql::WriteResultsTsv(*result, std::cout);
      break;
    case OutputMode::kTable:
      PrintTable(*result);
      break;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  alex::InitLoggingFromEnv();
  if (argc < 2) {
    std::cerr << "usage: sparql_shell <data.nt|data.ttl> [--json|--tsv] "
                 "[query]\n       sparql_shell --federate <left> <right> "
                 "<links> [query]\n";
    return 1;
  }

  const bool federate = std::string(argv[1]) == "--federate";
  OutputMode mode = OutputMode::kTable;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") mode = OutputMode::kJson;
    else if (arg == "--tsv") mode = OutputMode::kTsv;
    else if (arg != "--federate") positional.push_back(arg);
  }

  rdf::Dataset left("left");
  rdf::Dataset right("right");
  fed::LinkIndex links;
  std::unique_ptr<fed::Endpoint> left_ep, right_ep;
  std::unique_ptr<fed::FederatedEngine> engine;
  size_t consumed = 0;

  if (federate) {
    if (positional.size() < 3) {
      std::cerr << "--federate needs <left> <right> <links>\n";
      return 1;
    }
    if (!LoadFile(positional[0], &left) || !LoadFile(positional[1], &right)) {
      return 1;
    }
    rdf::Dataset link_data("links");
    if (!LoadFile(positional[2], &link_data)) return 1;
    auto same_as =
        link_data.dict().Lookup(rdf::Term::Iri(std::string(rdf::kOwlSameAs)));
    if (same_as) {
      link_data.store().ForEachMatch(
          rdf::TriplePattern{rdf::kInvalidTermId, *same_as,
                             rdf::kInvalidTermId},
          [&](const rdf::Triple& t) {
            links.Add(link_data.dict().term(t.subject).value,
                      link_data.dict().term(t.object).value);
            return true;
          });
    }
    std::cerr << "link index: " << links.size() << " owl:sameAs links\n";
    left_ep = std::make_unique<fed::Endpoint>(&left);
    right_ep = std::make_unique<fed::Endpoint>(&right);
    engine = std::make_unique<fed::FederatedEngine>(left_ep.get(),
                                                    right_ep.get(), &links);
    consumed = 3;
  } else {
    if (!LoadFile(positional[0], &left)) return 1;
    consumed = 1;
  }

  auto run = [&](const std::string& query) {
    if (engine) {
      auto r = engine->ExecuteText(query);
      if (!r.ok()) {
        std::cerr << r.status() << "\n";
        return 1;
      }
      PrintFederated(*r);
      return 0;
    }
    return RunLocal(left, query, mode);
  };

  if (positional.size() > consumed) {
    std::string query;
    for (size_t i = consumed; i < positional.size(); ++i) {
      if (!query.empty()) query += " ";
      query += positional[i];
    }
    return run(query);
  }

  std::string line;
  while (std::getline(std::cin, line)) {
    if (std::string(TrimAscii(line)).empty()) break;
    run(line);
  }
  return 0;
}
