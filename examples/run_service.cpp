// Runs the long-running concurrent link service over a built-in scenario:
// N closed-loop simulated clients share one PartitionedAlex and one
// endpoint stack, issuing federated queries against epoch-versioned link
// snapshots while feedback batches commit new epochs underneath them.
//
// Usage:
//   run_service [scenario] [clients] [ops_per_client] [flags...]
//   run_service --list
//
// Flags (anywhere after the positionals):
//   --think <s>               client think time between ops (default 0)
//   --feedback-fraction <p>   probability an answered query yields feedback
//   --batch <n>               feedback items per episode commit (default 32)
//   --max-in-flight <n>       admission bound (0 = 2x clients)
//   --deterministic           single-threaded SimClock mode (repeatable)
//   --seed <n>                service seed (default 1)
//   --checkpoint-dir <dir>    where service snapshots go (enables them)
//   --checkpoint-every <k>    write a snapshot every k commits (default 1)
//   --checkpoint-keep <n>     retained snapshot depth (default 3)
//   --resume <path>           resume from a checkpoint file/dir/MANIFEST
//   --telemetry-interval <s>  hub sampling interval (0 = off)
//   --telemetry-out <file>    hub JSON timeline (default service_timeline.json)
//   --prom-out <file>         Prometheus text exposition
//   --slo <h>:<q>:<target>    latency SLO, e.g. --slo svc.query_seconds:0.99:0.1
//
// Example:
//   ./build/examples/run_service dbpedia_nytimes 64 100 \
//       --slo svc.query_seconds:0.99:0.25 --telemetry-interval 0.5

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"
#include "core/partitioned.h"
#include "datagen/scenarios.h"
#include "obs/telemetry_hub.h"
#include "paris/paris.h"
#include "service/link_service.h"

namespace {

/// Parses "<histogram>:<quantile>:<target_seconds>"; exits on malformed
/// input (operator-facing flag; fail fast beats guessing).
alex::obs::SloConfig ParseSloFlag(const std::string& spec) {
  const size_t first = spec.find(':');
  const size_t second = first == std::string::npos
                            ? std::string::npos
                            : spec.find(':', first + 1);
  if (first == std::string::npos || second == std::string::npos) {
    std::cerr << "--slo expects <histogram>:<quantile>:<target_seconds>, got '"
              << spec << "'\n";
    std::exit(1);
  }
  alex::obs::SloConfig slo;
  slo.histogram = spec.substr(0, first);
  slo.quantile = std::strtod(spec.substr(first + 1, second - first - 1).c_str(),
                             nullptr);
  slo.target_seconds = std::strtod(spec.substr(second + 1).c_str(), nullptr);
  slo.name = slo.histogram + "_p" +
             std::to_string(static_cast<int>(slo.quantile * 100));
  if (slo.quantile <= 0.0 || slo.quantile > 1.0 || slo.target_seconds <= 0.0) {
    std::cerr << "--slo '" << spec
              << "': quantile must be in (0,1] and target > 0\n";
    std::exit(1);
  }
  return slo;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace alex;
  InitLoggingFromEnv();

  std::vector<std::string> positional;
  svc::ServiceConfig config;
  double telemetry_interval = 0.0;
  std::string telemetry_out = "service_timeline.json";
  std::string prom_out;
  std::vector<obs::SloConfig> slos;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto flag_value = [&](const char* flag) -> const char* {
      if (arg != flag) return nullptr;
      if (i + 1 >= argc) {
        std::cerr << flag << " requires a value\n";
        std::exit(1);
      }
      return argv[++i];
    };
    if (const char* v = flag_value("--think")) {
      config.think_seconds = std::strtod(v, nullptr);
    } else if (const char* v = flag_value("--feedback-fraction")) {
      config.feedback_fraction = std::strtod(v, nullptr);
    } else if (const char* v = flag_value("--batch")) {
      config.feedback_batch = std::strtoull(v, nullptr, 10);
    } else if (const char* v = flag_value("--max-in-flight")) {
      config.max_in_flight = std::strtoull(v, nullptr, 10);
    } else if (arg == "--deterministic") {
      config.deterministic = true;
    } else if (const char* v = flag_value("--seed")) {
      config.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = flag_value("--checkpoint-dir")) {
      config.checkpoint_dir = v;
    } else if (const char* v = flag_value("--checkpoint-every")) {
      config.checkpoint_every = std::strtoull(v, nullptr, 10);
    } else if (const char* v = flag_value("--checkpoint-keep")) {
      config.checkpoint_keep = std::strtoull(v, nullptr, 10);
    } else if (const char* v = flag_value("--resume")) {
      config.resume_from = v;
    } else if (const char* v = flag_value("--telemetry-interval")) {
      telemetry_interval = std::strtod(v, nullptr);
    } else if (const char* v = flag_value("--telemetry-out")) {
      telemetry_out = v;
    } else if (const char* v = flag_value("--prom-out")) {
      prom_out = v;
    } else if (const char* v = flag_value("--slo")) {
      slos.push_back(ParseSloFlag(v));
    } else if (arg.rfind("--", 0) == 0 && arg != "--list") {
      std::cerr << "unknown flag '" << arg << "'\n";
      return 1;
    } else {
      positional.push_back(arg);
    }
  }

  const std::string name = !positional.empty() ? positional[0]
                                               : "dbpedia_nytimes";
  if (name == "--list") {
    for (const auto& s : datagen::AllScenarios()) {
      std::cout << s.name << "\n";
    }
    return 0;
  }
  datagen::ScenarioConfig scenario = datagen::ScenarioByName(name);
  if (scenario.name.empty()) {
    std::cerr << "unknown scenario '" << name << "' (try --list)\n";
    return 1;
  }
  if (positional.size() > 1) {
    config.num_clients = std::strtoull(positional[1].c_str(), nullptr, 10);
  }
  if (positional.size() > 2) {
    config.ops_per_client = std::strtoull(positional[2].c_str(), nullptr, 10);
  }

  SteadyClock telemetry_clock;
  std::unique_ptr<obs::TelemetryHub> hub;
  if (telemetry_interval > 0.0 || !slos.empty() || !prom_out.empty()) {
    hub = std::make_unique<obs::TelemetryHub>(
        &telemetry_clock,
        telemetry_interval > 0.0 ? telemetry_interval : 1.0);
    for (obs::SloConfig& slo : slos) hub->AddSlo(std::move(slo));
    config.hub = hub.get();
  }

  // Setup mirrors the simulation: generate, link automatically with PARIS,
  // seed the engine's candidates from the linker's output — then hand the
  // shared engine to the service instead of the episode loop.
  std::cout << "# generating scenario " << scenario.name << "\n";
  datagen::GeneratedPair pair = datagen::GenerateScenario(scenario);
  core::AlexConfig alex_config;
  core::PartitionedAlex alex(&pair.left, &pair.right, alex_config);
  alex.Build();
  paris::ParisLinker linker(&pair.left, &pair.right, {});
  alex.InitializeCandidates(linker.Run());

  std::cout << "# serving: " << config.num_clients << " clients x "
            << config.ops_per_client << " ops"
            << (config.deterministic ? " (deterministic)" : "") << "\n";
  svc::LinkService service(&pair, &alex, alex_config, config);
  const svc::ServiceReport report = service.Run();
  if (!report.resume_error.empty()) {
    std::cerr << "resume failed: " << report.resume_error << "\n";
    return 2;
  }

  std::cout << "clients             " << report.clients << "\n"
            << "ops                 " << report.ops << "\n"
            << "queries             " << report.queries << "\n"
            << "shed                " << report.shed << "\n"
            << "answered            " << report.answered << "\n"
            << "degraded            " << report.degraded << "\n"
            << "failed              " << report.failed << "\n"
            << "rows                " << report.rows << "\n"
            << "p50 latency (ms)    " << report.latency.p50_seconds * 1e3
            << "\n"
            << "p99 latency (ms)    " << report.latency.p99_seconds * 1e3
            << "\n"
            << "feedback items      " << report.feedback_items << "\n"
            << "committed episodes  " << report.committed_episodes << "\n"
            << "epochs published    " << report.epochs_published << "\n"
            << "links +" << report.links_added << " / -"
            << report.links_removed << "\n"
            << "checkpoints         " << report.checkpoints_written << "\n"
            << "duration (s)        " << report.duration_seconds << "\n"
            << "final P/R/F         " << report.quality.precision << " / "
            << report.quality.recall << " / " << report.quality.f_measure
            << "\n";

  if (hub) {
    hub->ForceSample();
    {
      std::ofstream out(telemetry_out);
      hub->WriteJsonTimeline(out);
    }
    std::cout << "# telemetry timeline (" << hub->sample_count()
              << " samples, " << hub->breach_count() << " SLO breaches) -> "
              << telemetry_out << "\n";
    if (!prom_out.empty()) {
      std::ofstream out(prom_out);
      hub->WritePrometheus(out);
      std::cout << "# prometheus exposition -> " << prom_out << "\n";
    }
  }
  return 0;
}
