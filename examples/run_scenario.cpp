// Runs any built-in scenario end to end and prints the per-episode quality
// series, mirroring the paper's figures.
//
// Usage:
//   run_scenario [scenario] [episode_size] [step_size] [error_rate]
//                [epsilon] [max_links_per_action] [flags...]
//   run_scenario --list
//
// Flags (anywhere after the positionals):
//   --checkpoint-dir <dir>    where snapshots go (default: alex-checkpoints)
//   --checkpoint-every <k>    write a snapshot every k episodes (0 = off)
//   --checkpoint-keep <n>     retained snapshot depth (default: 3)
//   --resume <path>           resume from a checkpoint file, directory, or
//                             MANIFEST (newest retained snapshot)
//   --max-episodes <n>        episode budget (useful with --resume)
//   --linker <tag>            seed linker: paris (default) or sigma
//   --policy <tag>            RL policy: epsilon-greedy (default) or
//                             adaptive-feature
//   --telemetry-interval <s>  sample the metrics registry every s seconds
//                             of run time (0 = off; enables the hub)
//   --telemetry-out <file>    write the hub's JSON timeline here
//                             (default: telemetry_timeline.json)
//   --prom-out <file>         write Prometheus text exposition here
//   --slo <h>:<q>:<target>    add a latency SLO on histogram <h> at
//                             quantile <q> with target <target> seconds
//                             (repeatable), e.g.
//                             --slo fed.query_seconds:0.99:0.5
//
// Example:
//   ./build/examples/run_scenario dbpedia_drugbank 1000 0.05 0.0
//   ./build/examples/run_scenario dbpedia_drugbank 1000 0.05 0.0 0.1 0 \
//       --checkpoint-every 10 --checkpoint-dir /tmp/ckpt
//   ./build/examples/run_scenario dbpedia_drugbank 1000 0.05 0.0 0.1 0 \
//       --telemetry-interval 1 --slo phase.explore:0.99:5.0 \
//       --telemetry-out /tmp/timeline.json --prom-out /tmp/metrics.prom

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"
#include "core/policy.h"
#include "datagen/scenarios.h"
#include "obs/telemetry_hub.h"
#include "paris/seed_linkers.h"
#include "rl/adaptive_policy.h"
#include "simulation/report.h"
#include "simulation/simulation.h"

namespace {

/// Parses "<histogram>:<quantile>:<target_seconds>"; exits on malformed
/// input (this is an operator-facing flag; fail fast beats guessing).
alex::obs::SloConfig ParseSloFlag(const std::string& spec) {
  const size_t first = spec.find(':');
  const size_t second = first == std::string::npos
                            ? std::string::npos
                            : spec.find(':', first + 1);
  if (first == std::string::npos || second == std::string::npos) {
    std::cerr << "--slo expects <histogram>:<quantile>:<target_seconds>, got '"
              << spec << "'\n";
    std::exit(1);
  }
  alex::obs::SloConfig slo;
  slo.histogram = spec.substr(0, first);
  slo.quantile = std::strtod(spec.substr(first + 1, second - first - 1).c_str(),
                             nullptr);
  slo.target_seconds = std::strtod(spec.substr(second + 1).c_str(), nullptr);
  slo.name = slo.histogram + "_p" +
             std::to_string(static_cast<int>(slo.quantile * 100));
  if (slo.quantile <= 0.0 || slo.quantile > 1.0 || slo.target_seconds <= 0.0) {
    std::cerr << "--slo '" << spec
              << "': quantile must be in (0,1] and target > 0\n";
    std::exit(1);
  }
  return slo;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace alex;
  InitLoggingFromEnv();

  // Split positional operands from --flag value pairs.
  std::vector<std::string> positional;
  simulation::SimulationConfig config;
  size_t checkpoint_every = 0;
  double telemetry_interval = 0.0;
  std::string telemetry_out = "telemetry_timeline.json";
  std::string prom_out;
  std::vector<obs::SloConfig> slos;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto flag_value = [&](const char* flag) -> const char* {
      if (arg != flag) return nullptr;
      if (i + 1 >= argc) {
        std::cerr << flag << " requires a value\n";
        std::exit(1);
      }
      return argv[++i];
    };
    if (const char* v = flag_value("--checkpoint-dir")) {
      config.checkpoint_dir = v;
    } else if (const char* v = flag_value("--checkpoint-every")) {
      checkpoint_every = std::strtoull(v, nullptr, 10);
    } else if (const char* v = flag_value("--checkpoint-keep")) {
      config.checkpoint_keep = std::strtoull(v, nullptr, 10);
    } else if (const char* v = flag_value("--resume")) {
      config.resume_from = v;
    } else if (const char* v = flag_value("--max-episodes")) {
      config.alex.max_episodes = std::strtoull(v, nullptr, 10);
    } else if (const char* v = flag_value("--linker")) {
      config.linker = v;
    } else if (const char* v = flag_value("--policy")) {
      config.alex.policy = v;
    } else if (const char* v = flag_value("--telemetry-interval")) {
      telemetry_interval = std::strtod(v, nullptr);
    } else if (const char* v = flag_value("--telemetry-out")) {
      telemetry_out = v;
    } else if (const char* v = flag_value("--prom-out")) {
      prom_out = v;
    } else if (const char* v = flag_value("--slo")) {
      slos.push_back(ParseSloFlag(v));
    } else if (arg.rfind("--", 0) == 0 && arg != "--list") {
      std::cerr << "unknown flag '" << arg << "'\n";
      return 1;
    } else {
      positional.push_back(arg);
    }
  }
  config.checkpoint_every_k_episodes = checkpoint_every;

  // Validate the pluggable tags up front: a typo should stop the run here,
  // not fall back to the default linker mid-run or fail after generation.
  rl::RegisterAdaptiveFeaturePolicy();
  {
    const std::vector<std::string> linkers = paris::KnownLinkerTags();
    if (std::find(linkers.begin(), linkers.end(), config.linker) ==
        linkers.end()) {
      std::cerr << "unknown linker '" << config.linker << "' (known:";
      for (const std::string& tag : linkers) std::cerr << " " << tag;
      std::cerr << ")\n";
      return 1;
    }
    if (!core::PolicyRegistry::Global().Contains(config.alex.policy)) {
      std::cerr << "unknown policy '" << config.alex.policy << "' (known:";
      for (const std::string& tag : core::PolicyRegistry::Global().KnownTags())
        std::cerr << " " << tag;
      std::cerr << ")\n";
      return 1;
    }
  }

  const std::string name = !positional.empty() ? positional[0]
                                               : "dbpedia_nytimes";
  if (name == "--list") {
    for (const auto& s : datagen::AllScenarios()) {
      std::cout << s.name << "\n";
    }
    return 0;
  }

  datagen::ScenarioConfig scenario = datagen::ScenarioByName(name);
  if (scenario.name.empty()) {
    std::cerr << "unknown scenario '" << name << "' (try --list)\n";
    return 1;
  }

  config.scenario = scenario;
  if (positional.size() > 1) {
    config.alex.episode_size = std::strtoull(positional[1].c_str(), nullptr, 10);
  }
  if (positional.size() > 2) {
    config.alex.step_size = std::strtod(positional[2].c_str(), nullptr);
  }
  if (positional.size() > 3) {
    config.feedback_error_rate = std::strtod(positional[3].c_str(), nullptr);
  }
  if (positional.size() > 4) {
    config.alex.epsilon = std::strtod(positional[4].c_str(), nullptr);
  }
  if (positional.size() > 5) {
    config.alex.max_links_per_action =
        std::strtoull(positional[5].c_str(), nullptr, 10);
  }

  // Live telemetry: the hub samples at episode boundaries (wall clock) and
  // flushes a JSON timeline + optional Prometheus exposition at exit.
  SteadyClock telemetry_clock;
  std::unique_ptr<obs::TelemetryHub> hub;
  if (telemetry_interval > 0.0 || !slos.empty() || !prom_out.empty()) {
    hub = std::make_unique<obs::TelemetryHub>(
        &telemetry_clock,
        telemetry_interval > 0.0 ? telemetry_interval : 1.0);
    for (obs::SloConfig& slo : slos) hub->AddSlo(std::move(slo));
    config.telemetry_hub = hub.get();
  }

  simulation::Simulation sim(config);
  const simulation::RunResult result = sim.Run();
  if (!result.resume_error.ok()) {
    std::cerr << "resume failed: " << result.resume_error << "\n";
    return 2;
  }
  if (result.resumed_from_episode > 0) {
    std::cout << "# resumed from episode " << result.resumed_from_episode
              << "\n";
  }
  simulation::PrintEpisodeSeries(result, std::cout);
  std::cout << "\n";
  simulation::PrintRunSummary(result, std::cout);

  if (hub) {
    hub->ForceSample();
    {
      std::ofstream out(telemetry_out);
      hub->WriteJsonTimeline(out);
    }
    std::cout << "# telemetry timeline (" << hub->sample_count()
              << " samples, " << hub->breach_count()
              << " SLO breaches) -> " << telemetry_out << "\n";
    if (!prom_out.empty()) {
      std::ofstream out(prom_out);
      hub->WritePrometheus(out);
      std::cout << "# prometheus exposition -> " << prom_out << "\n";
    }
  }
  return 0;
}
