// Runs any built-in scenario end to end and prints the per-episode quality
// series, mirroring the paper's figures.
//
// Usage:
//   run_scenario [scenario] [episode_size] [step_size] [error_rate]
//                [epsilon] [max_links_per_action] [flags...]
//   run_scenario --list
//
// Flags (anywhere after the positionals):
//   --checkpoint-dir <dir>    where snapshots go (default: alex-checkpoints)
//   --checkpoint-every <k>    write a snapshot every k episodes (0 = off)
//   --checkpoint-keep <n>     retained snapshot depth (default: 3)
//   --resume <path>           resume from a checkpoint file, directory, or
//                             MANIFEST (newest retained snapshot)
//   --max-episodes <n>        episode budget (useful with --resume)
//
// Example:
//   ./build/examples/run_scenario dbpedia_drugbank 1000 0.05 0.0
//   ./build/examples/run_scenario dbpedia_drugbank 1000 0.05 0.0 0.1 0 \
//       --checkpoint-every 10 --checkpoint-dir /tmp/ckpt
//   ./build/examples/run_scenario dbpedia_drugbank 1000 0.05 0.0 0.1 0 \
//       --resume /tmp/ckpt

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "datagen/scenarios.h"
#include "simulation/report.h"
#include "simulation/simulation.h"
#include "common/logging.h"

int main(int argc, char** argv) {
  using namespace alex;
  InitLoggingFromEnv();

  // Split positional operands from --flag value pairs.
  std::vector<std::string> positional;
  simulation::SimulationConfig config;
  size_t checkpoint_every = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto flag_value = [&](const char* flag) -> const char* {
      if (arg != flag) return nullptr;
      if (i + 1 >= argc) {
        std::cerr << flag << " requires a value\n";
        std::exit(1);
      }
      return argv[++i];
    };
    if (const char* v = flag_value("--checkpoint-dir")) {
      config.checkpoint_dir = v;
    } else if (const char* v = flag_value("--checkpoint-every")) {
      checkpoint_every = std::strtoull(v, nullptr, 10);
    } else if (const char* v = flag_value("--checkpoint-keep")) {
      config.checkpoint_keep = std::strtoull(v, nullptr, 10);
    } else if (const char* v = flag_value("--resume")) {
      config.resume_from = v;
    } else if (const char* v = flag_value("--max-episodes")) {
      config.alex.max_episodes = std::strtoull(v, nullptr, 10);
    } else if (arg.rfind("--", 0) == 0 && arg != "--list") {
      std::cerr << "unknown flag '" << arg << "'\n";
      return 1;
    } else {
      positional.push_back(arg);
    }
  }
  config.checkpoint_every_k_episodes = checkpoint_every;

  const std::string name = !positional.empty() ? positional[0]
                                               : "dbpedia_nytimes";
  if (name == "--list") {
    for (const auto& s : datagen::AllScenarios()) {
      std::cout << s.name << "\n";
    }
    return 0;
  }

  datagen::ScenarioConfig scenario = datagen::ScenarioByName(name);
  if (scenario.name.empty()) {
    std::cerr << "unknown scenario '" << name << "' (try --list)\n";
    return 1;
  }

  config.scenario = scenario;
  if (positional.size() > 1) {
    config.alex.episode_size = std::strtoull(positional[1].c_str(), nullptr, 10);
  }
  if (positional.size() > 2) {
    config.alex.step_size = std::strtod(positional[2].c_str(), nullptr);
  }
  if (positional.size() > 3) {
    config.feedback_error_rate = std::strtod(positional[3].c_str(), nullptr);
  }
  if (positional.size() > 4) {
    config.alex.epsilon = std::strtod(positional[4].c_str(), nullptr);
  }
  if (positional.size() > 5) {
    config.alex.max_links_per_action =
        std::strtoull(positional[5].c_str(), nullptr, 10);
  }

  simulation::Simulation sim(config);
  const simulation::RunResult result = sim.Run();
  if (!result.resume_error.ok()) {
    std::cerr << "resume failed: " << result.resume_error << "\n";
    return 2;
  }
  if (result.resumed_from_episode > 0) {
    std::cout << "# resumed from episode " << result.resumed_from_episode
              << "\n";
  }
  simulation::PrintEpisodeSeries(result, std::cout);
  std::cout << "\n";
  simulation::PrintRunSummary(result, std::cout);
  return 0;
}
