// Runs any built-in scenario end to end and prints the per-episode quality
// series, mirroring the paper's figures.
//
// Usage:
//   run_scenario [scenario] [episode_size] [step_size] [error_rate]
//                [epsilon] [max_links_per_action]
//   run_scenario --list
//
// Example:
//   ./build/examples/run_scenario dbpedia_drugbank 1000 0.05 0.0

#include <cstdlib>
#include <iostream>
#include <string>

#include "datagen/scenarios.h"
#include "simulation/report.h"
#include "simulation/simulation.h"
#include "common/logging.h"

int main(int argc, char** argv) {
  using namespace alex;
  InitLoggingFromEnv();

  const std::string name = argc > 1 ? argv[1] : "dbpedia_nytimes";
  if (name == "--list") {
    for (const auto& s : datagen::AllScenarios()) {
      std::cout << s.name << "\n";
    }
    return 0;
  }

  datagen::ScenarioConfig scenario = datagen::ScenarioByName(name);
  if (scenario.name.empty()) {
    std::cerr << "unknown scenario '" << name << "' (try --list)\n";
    return 1;
  }

  simulation::SimulationConfig config;
  config.scenario = scenario;
  if (argc > 2) config.alex.episode_size = std::strtoull(argv[2], nullptr, 10);
  if (argc > 3) config.alex.step_size = std::strtod(argv[3], nullptr);
  if (argc > 4) config.feedback_error_rate = std::strtod(argv[4], nullptr);
  if (argc > 5) config.alex.epsilon = std::strtod(argv[5], nullptr);
  if (argc > 6) {
    config.alex.max_links_per_action = std::strtoull(argv[6], nullptr, 10);
  }

  simulation::Simulation sim(config);
  const simulation::RunResult result = sim.Run();
  simulation::PrintEpisodeSeries(result, std::cout);
  std::cout << "\n";
  simulation::PrintRunSummary(result, std::cout);
  return 0;
}
